package memserver

import (
	"net"
	"time"

	"oasis/internal/telemetry"
)

// Live telemetry for the memory-server daemon and the resilient client.
// Every instrument lives on a telemetry.Registry (the process Default
// unless overridden), so a -metrics-addr scrape sees the same counters
// the in-process Stats/ResilienceStats snapshots report. Instrument
// updates are atomic adds on pre-registered series: the page-serving
// hot path takes no locks and allocates nothing for metrics.

// opName maps request message types to their metric label.
func opName(typ byte) string {
	switch typ {
	case msgGetPage:
		return "get_page"
	case msgGetPages:
		return "get_pages"
	case msgPutImage:
		return "put_image"
	case msgPutDiff:
		return "put_diff"
	case msgDeleteVM:
		return "delete"
	case msgStats:
		return "stats"
	case msgSetServing:
		return "set_serving"
	case msgPutBegin:
		return "put_begin"
	case msgPutChunk:
		return "put_chunk"
	case msgPutCommit:
		return "put_commit"
	default:
		return "unknown"
	}
}

// opTel is one operation's counter/latency pair.
type opTel struct {
	total  *telemetry.Counter
	errors *telemetry.Counter
	lat    *telemetry.Histogram
}

// serverTel bundles the daemon-side instruments. Multiple servers in one
// process (each host agent embeds one) aggregate into shared series.
type serverTel struct {
	connsActive *telemetry.Gauge
	connsTotal  *telemetry.Counter
	authFail    *telemetry.Counter
	panics      *telemetry.Counter
	idleDrops   *telemetry.Counter
	bytesIn     *telemetry.Counter
	bytesOut    *telemetry.Counter
	batchPages  *telemetry.Histogram
	applySecs   *telemetry.Histogram
	ops         map[byte]opTel
}

func newServerTel(r *telemetry.Registry) *serverTel {
	t := &serverTel{
		connsActive: r.Gauge("oasis_memserver_connections_active",
			"Client connections currently held by the daemon."),
		connsTotal: r.Counter("oasis_memserver_connections_total",
			"Client connections accepted over the daemon's lifetime."),
		authFail: r.Counter("oasis_memserver_auth_failures_total",
			"Connections dropped for failing the HMAC challenge."),
		panics: r.Counter("oasis_memserver_conn_panics_total",
			"Per-connection panics recovered by the serve loop."),
		idleDrops: r.Counter("oasis_memserver_idle_drops_total",
			"Connections dropped for exceeding the idle timeout."),
		bytesIn: r.Counter("oasis_memserver_bytes_in_total",
			"Bytes read from clients (wire bytes, all frames)."),
		bytesOut: r.Counter("oasis_memserver_bytes_out_total",
			"Bytes written to clients (wire bytes, all frames)."),
		batchPages: r.Histogram("oasis_memserver_batch_pages",
			"Pages requested per GetPages batch.",
			telemetry.ExpBuckets(1, 2, 13)),
		applySecs: r.Histogram("oasis_memserver_apply_seconds",
			"Commit-time decode/apply latency of a staged chunked upload.",
			telemetry.ExpBuckets(1e-5, 2, 20)),
		ops: make(map[byte]opTel),
	}
	for _, typ := range []byte{msgGetPage, msgGetPages, msgPutImage, msgPutDiff,
		msgDeleteVM, msgStats, msgSetServing,
		msgPutBegin, msgPutChunk, msgPutCommit, 0 /* unknown */} {
		op := opName(typ)
		t.ops[typ] = opTel{
			total: r.Counter("oasis_memserver_ops_total",
				"Operations handled, by protocol op.", telemetry.L("op", op)),
			errors: r.Counter("oasis_memserver_op_errors_total",
				"Operations answered with an error reply, by protocol op.", telemetry.L("op", op)),
			lat: r.Histogram("oasis_memserver_op_seconds",
				"Server-side operation service latency.", nil, telemetry.L("op", op)),
		}
	}
	return t
}

// op returns the instruments for a message type, folding unrecognised
// types onto the "unknown" series.
func (t *serverTel) op(typ byte) opTel {
	if o, ok := t.ops[typ]; ok {
		return o
	}
	return t.ops[0]
}

// countingConn tallies wire bytes into the server's traffic counters.
// Counting rides the Read/Write calls the serve loop already makes; it
// adds two atomic CASes per syscall and nothing else.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(float64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(float64(n))
	}
	return n, err
}

// resTel bundles the resilient client's instruments. The client label
// (ResilientConfig.Name) separates e.g. a memtap's fault path from an
// agent's upload path; unnamed clients share the "default" series.
type resTel struct {
	retries    *telemetry.Counter
	reconnects *telemetry.Counter
	failures   *telemetry.Counter
	opens      *telemetry.Counter
	backoff    *telemetry.Counter
	state      *telemetry.Gauge
}

func newResTel(r *telemetry.Registry, name string) *resTel {
	if r == nil {
		r = telemetry.Default
	}
	if name == "" {
		name = "default"
	}
	l := telemetry.L("client", name)
	return &resTel{
		retries: r.Counter("oasis_client_retries_total",
			"Operation attempts beyond the first.", l),
		reconnects: r.Counter("oasis_client_reconnects_total",
			"Successful re-dials after a poisoned connection.", l),
		failures: r.Counter("oasis_client_failures_total",
			"Attempts that ended in a transport error.", l),
		opens: r.Counter("oasis_client_breaker_opens_total",
			"Circuit-breaker transitions to open.", l),
		backoff: r.Counter("oasis_client_backoff_seconds_total",
			"Total time spent sleeping in retry backoff.", l),
		state: r.Gauge("oasis_client_breaker_state",
			"Current breaker state: 0 closed, 1 open, 2 half-open.", l),
	}
}

// poolTel bundles the connection-pool instruments. They live in the same
// oasis_client_* namespace (and carry the same client label) as the
// per-lane resilience metrics, so one scrape shows a pool's dispatch rate
// next to its lanes' retries and breaker state.
type poolTel struct {
	size       *telemetry.Gauge
	inflight   *telemetry.Gauge
	dispatches *telemetry.Counter
	lanesOpen  *telemetry.Gauge
}

func newPoolTel(r *telemetry.Registry, name string) *poolTel {
	if r == nil {
		r = telemetry.Default
	}
	if name == "" {
		name = "default"
	}
	l := telemetry.L("client", name)
	return &poolTel{
		size: r.Gauge("oasis_client_pool_size",
			"Connections (lanes) in the client pool.", l),
		inflight: r.Gauge("oasis_client_pool_inflight",
			"Operations currently dispatched to pool lanes.", l),
		dispatches: r.Counter("oasis_client_pool_dispatches_total",
			"Operations dispatched through the pool.", l),
		lanesOpen: r.Gauge("oasis_client_pool_lanes_open",
			"Pool lanes whose circuit breaker is currently open.", l),
	}
}

// putTel bundles the streaming-upload client instruments. Like the pool
// metrics they live in the oasis_client_* namespace under the same
// client label, so one scrape shows an upload's chunk rate next to the
// lanes carrying it.
type putTel struct {
	chunks   *telemetry.Counter
	inflight *telemetry.Gauge
	retried  *telemetry.Counter
}

func newPutTel(r *telemetry.Registry, name string) *putTel {
	if r == nil {
		r = telemetry.Default
	}
	if name == "" {
		name = "default"
	}
	l := telemetry.L("client", name)
	return &putTel{
		chunks: r.Counter("oasis_client_put_chunks_total",
			"Snapshot chunks shipped by streaming uploads.", l),
		inflight: r.Gauge("oasis_client_put_inflight",
			"Upload chunks currently in flight.", l),
		retried: r.Counter("oasis_client_put_retried_total",
			"Upload chunks re-issued after a lane-level failure.", l),
	}
}

// decompressTel tracks client-side page decompression, the stage of the
// fault path that is neither wire nor install time.
var decompressSeconds = func() *telemetry.Histogram {
	return telemetry.Default.Histogram("oasis_client_decompress_seconds",
		"Client-side page decode/decompress latency.", telemetry.ExpBuckets(1e-6, 2, 16))
}()

// sinceSeconds is a tiny helper for observing a latency.
func sinceSeconds(start time.Time) float64 { return time.Since(start).Seconds() }
