package memserver

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/rng"
	"oasis/internal/units"
)

// Alloc gates for the measured hot paths. These are the enforcement
// half of the zero-copy framing work: if a future change re-introduces
// a per-op allocation on the GetPage reply or PutChunk framing path,
// these tests fail rather than the regression surfacing as a slow
// benchmark three PRs later.

// discardConn is a net.Conn that swallows writes and replies to every
// read with an endless stream of empty msgOK frames, so a client
// round trip completes without a server (and without allocations).
type discardConn struct {
	reply [5]byte
	pos   int
}

func newDiscardConn() *discardConn {
	c := &discardConn{}
	c.reply[4] = msgOK // length 0, type msgOK
	return c
}

func (c *discardConn) Read(p []byte) (int, error) {
	n := copy(p, c.reply[c.pos:])
	c.pos = (c.pos + n) % len(c.reply)
	return n, nil
}

func (c *discardConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *discardConn) Close() error                       { return nil }
func (c *discardConn) LocalAddr() net.Addr                { return nil }
func (c *discardConn) RemoteAddr() net.Addr               { return nil }
func (c *discardConn) SetDeadline(t time.Time) error      { return nil }
func (c *discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *discardConn) SetWriteDeadline(t time.Time) error { return nil }

func testPage(seed uint64) []byte {
	r := rng.New(seed)
	page := make([]byte, units.PageSize)
	// Compressible but not trivial: repeated 16-byte motifs.
	motif := make([]byte, 16)
	for i := range motif {
		motif[i] = byte(r.Uint64())
	}
	for i := 0; i < len(page); i += len(motif) {
		copy(page[i:], motif)
	}
	return page
}

// TestPutChunkFramingZeroAlloc drives the real PutChunkRef path —
// segment layout, session-MAC trailer, coalesced/vectored framing and
// the empty-msgOK reply read — and requires zero heap allocations per
// operation once warm.
func TestPutChunkFramingZeroAlloc(t *testing.T) {
	c := &Client{conn: newDiscardConn(), opTimeout: time.Second}
	var nonce [16]byte
	c.upMAC = sessionMAC(testSecret, nonce[:])

	im := pagestore.NewImage(units.PagesBytes(16))
	r := rng.New(41)
	page := make([]byte, units.PageSize)
	for i := 0; i < 16; i++ {
		for j := 0; j < len(page); j += 8 {
			binary.BigEndian.PutUint64(page[j:], r.Uint64())
		}
		if err := im.Write(pagestore.PFN(i), page); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, err := pagestore.EncodeAll(im)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := pagestore.SplitSnapshotRefs(snap, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) < 2 {
		t.Fatalf("want multiple chunks, got %d", len(refs))
	}

	// Warm the reusable scratch (bufs capacity, coalesce buffer).
	for seq, ref := range refs {
		if err := c.PutChunkRef(9, 1, uint32(seq), ref); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for seq, ref := range refs {
			if err := c.PutChunkRef(9, 1, uint32(seq), ref); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("PutChunk framing allocates %.1f times per %d chunks; want 0", allocs, len(refs))
	}
}

// TestGetPageReplyZeroAlloc drives the server's GetPage reply
// construction — beginReply, in-place page encoding, single-write
// finishReply — and requires zero heap allocations per reply once the
// connection scratch is warm.
func TestGetPageReplyZeroAlloc(t *testing.T) {
	page := testPage(3)
	var scratch connScratch
	reply := func() {
		out := scratch.beginReply(msgPage)
		out, scratch.comp = pagestore.EncodePageAppend(out, scratch.comp, page)
		if err := scratch.finishReply(io.Discard, out); err != nil {
			t.Fatal(err)
		}
	}
	reply() // warm the reply and compression buffers
	if allocs := testing.AllocsPerRun(200, reply); allocs > 0 {
		t.Fatalf("GetPage reply allocates %.1f times per op; want 0", allocs)
	}
}

// legacyHandshake authenticates the way a pre-capability client does: a
// bare 32-byte MAC with no flags byte. Returns the accepted-flags
// payload from msgOK, or the server's error.
func legacyHandshake(t *testing.T, addr string, offerFlags []byte) (net.Conn, []byte, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	typ, nonce, err := readFrame(conn)
	if err != nil || typ != msgChallenge {
		conn.Close()
		t.Fatalf("challenge: typ=%d err=%v", typ, err)
	}
	h := hmac.New(sha256.New, testSecret)
	h.Write(nonce)
	auth := h.Sum(nil)
	auth = append(auth, offerFlags...)
	if err := writeFrame(conn, msgAuth, auth); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	if typ == msgError {
		conn.Close()
		return nil, nil, remoteError(payload)
	}
	if typ != msgOK {
		conn.Close()
		t.Fatalf("unexpected auth reply type %d", typ)
	}
	return conn, payload, nil
}

// TestUploadMACNegotiation covers the capability handshake matrix:
// flag-offering clients negotiate the session MAC, legacy clients stay
// accepted without it, and SetRequireUploadMAC refuses the downgrade.
func TestUploadMACNegotiation(t *testing.T) {
	srv, addr := startServer(t)

	c := dial(t, addr)
	if !c.UploadMACNegotiated() {
		t.Fatal("modern client did not negotiate the upload MAC")
	}
	_, snap := makeSnapshot(t, 8*units.MiB, 21, 20)
	if err := c.PutImage(501, 8*units.MiB, snap); err != nil {
		t.Fatalf("MACed PutImage: %v", err)
	}

	// A legacy-shaped handshake still authenticates while downgrades are
	// allowed, and its accepted-flags echo is empty.
	conn, accepted, err := legacyHandshake(t, addr, nil)
	if err != nil {
		t.Fatalf("legacy handshake refused: %v", err)
	}
	if len(accepted) != 0 && accepted[0] != 0 {
		t.Fatalf("legacy client granted flags %v", accepted)
	}
	// Un-MACed upload over the legacy connection works.
	payload := make([]byte, 12+len(snap))
	binary.BigEndian.PutUint32(payload, 502)
	binary.BigEndian.PutUint64(payload[4:], uint64(8*units.MiB))
	copy(payload[12:], snap)
	if err := writeFrame(conn, msgPutImage, payload); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readFrame(conn)
	if err != nil || typ != msgOK {
		t.Fatalf("legacy PutImage: typ=%d err=%v", typ, err)
	}
	conn.Close()

	// With the downgrade refused, the same handshake is rejected before
	// any operation.
	srv.SetRequireUploadMAC(true)
	if _, _, err := legacyHandshake(t, addr, nil); err == nil {
		t.Fatal("downgrade accepted despite SetRequireUploadMAC")
	} else if !strings.Contains(err.Error(), "MAC required") {
		t.Fatalf("downgrade refusal error = %v", err)
	}
	// Flag-offering clients still connect and upload.
	c2 := dial(t, addr)
	if !c2.UploadMACNegotiated() {
		t.Fatal("modern client did not negotiate under require mode")
	}
	if err := c2.PutImage(503, 8*units.MiB, snap); err != nil {
		t.Fatalf("MACed PutImage under require mode: %v", err)
	}
}

// TestUploadMACRejectsTamper corrupts the MAC trailer of an upload frame
// on a MAC-negotiated connection and checks the server refuses it.
func TestUploadMACRejectsTamper(t *testing.T) {
	_, addr := startServer(t)
	_, snap := makeSnapshot(t, 8*units.MiB, 22, 10)

	conn, accepted, err := legacyHandshake(t, addr, []byte{authFlagUploadMAC})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if len(accepted) == 0 || accepted[0]&authFlagUploadMAC == 0 {
		t.Fatalf("server did not accept the MAC flag: %v", accepted)
	}

	payload := make([]byte, 12+len(snap)+macLen)
	binary.BigEndian.PutUint32(payload, 601)
	binary.BigEndian.PutUint64(payload[4:], uint64(8*units.MiB))
	copy(payload[12:], snap)
	// Trailer left as zeros: a forged/corrupted MAC.
	if err := writeFrame(conn, msgPutImage, payload); err != nil {
		t.Fatal(err)
	}
	typ, errPayload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError {
		t.Fatalf("tampered upload accepted (reply type %d)", typ)
	}
	if !bytes.Contains(errPayload, []byte("MAC")) {
		t.Fatalf("unexpected refusal: %s", errPayload)
	}
}

// TestStreamImageDictRoundTrip pushes a dictionary-mode snapshot with
// zero-page elision through the chunked streaming path and checks the
// server's applied image matches the source bit for bit.
func TestStreamImageDictRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	pool, err := DialPool(addr, testSecret, PoolConfig{Size: 2, Resilience: ResilientConfig{
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, JitterSeed: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	r := rng.New(31)
	im := pagestore.NewImage(units.PagesBytes(300))
	template := testPage(77)
	page := make([]byte, units.PageSize)
	for i := 0; i < 300; i++ {
		switch r.Intn(4) {
		case 0: // untouched zero page
		case 1: // dirty-but-zero page (elided as a zero token)
			if err := im.Write(pagestore.PFN(i), nil); err != nil {
				t.Fatal(err)
			}
		default: // near-template page (dictionary fodder)
			copy(page, template)
			for j := 0; j < 10; j++ {
				page[r.Intn(len(page))] = byte(r.Uint64())
			}
			if err := im.Write(pagestore.PFN(i), page); err != nil {
				t.Fatal(err)
			}
		}
	}
	dict := pagestore.BuildDict(im)
	if dict == nil {
		t.Fatal("template-heavy image produced no dictionary")
	}
	snap, _, err := pagestore.EncodeAllDict(im, dict, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.StreamImage(701, im.Alloc(), snap, PutOptions{Streams: 3, ChunkBytes: 32 << 10}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Store().Get(701)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pagestore.EncodeAll(im)
	if err != nil {
		t.Fatal(err)
	}
	have, _, err := pagestore.EncodeAll(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, have) {
		t.Fatal("dict-mode streamed image diverges from the source")
	}
}
