package memserver

import (
	"bytes"
	"crypto/x509"
	"testing"
	"time"

	"oasis/internal/units"
)

func TestTLSUploadAndFetch(t *testing.T) {
	cert, pool, err := GenerateCert([]string{"127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(testSecret, t.Logf)
	addr, err := s.ListenTLS("127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := DialTLS(addr.String(), testSecret, pool, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src, snap := makeSnapshot(t, 4*units.MiB, 17, 30)
	if err := c.PutImage(55, 4*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	want, _ := src.Read(7)
	got, err := c.GetPage(55, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page mismatch over TLS")
	}
}

func TestTLSRejectsUntrustedServer(t *testing.T) {
	cert, _, err := GenerateCert([]string{"127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(testSecret, t.Logf)
	addr, err := s.ListenTLS("127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A client with an empty root pool must refuse the connection: this
	// is the §4.3 server-authenticity property.
	if _, err := DialTLS(addr.String(), testSecret, x509.NewCertPool(), 2*time.Second); err == nil {
		t.Fatal("untrusted server certificate accepted")
	}
}

func TestTLSStillRequiresSecret(t *testing.T) {
	cert, pool, err := GenerateCert([]string{"127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(testSecret, t.Logf)
	addr, err := s.ListenTLS("127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Transport security does not replace client authentication: the
	// HMAC challenge still runs inside the session.
	if _, err := DialTLS(addr.String(), []byte("wrong"), pool, 2*time.Second); err == nil {
		t.Fatal("bad shared secret accepted over TLS")
	}
}

func TestGenerateCertHosts(t *testing.T) {
	cert, _, err := GenerateCert([]string{"127.0.0.1", "memserver.rack1.example"})
	if err != nil {
		t.Fatal(err)
	}
	leaf := cert.Leaf
	if len(leaf.IPAddresses) != 1 || len(leaf.DNSNames) != 1 {
		t.Fatalf("SANs = %v / %v", leaf.IPAddresses, leaf.DNSNames)
	}
	if time.Until(leaf.NotAfter) < 300*24*time.Hour {
		t.Error("certificate validity too short")
	}
}
