package memserver_test

import (
	"fmt"
	"time"

	"oasis/internal/memserver"
	"oasis/internal/pagestore"
	"oasis/internal/telemetry"
	"oasis/internal/units"
)

// ExampleResilientClient shows the knobs of the fault-tolerant client
// path and a full round trip against a live server: upload an image the
// way a suspending host does, then fault a page back the way a memtap
// does. The config shown is the shape agents use — small retry budgets,
// fast breaker — with a Name so the client's oasis_client_* metrics are
// distinguishable in a scrape.
func ExampleResilientClient() {
	secret := []byte("example-secret")
	srv := memserver.NewServer(secret, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	cfg := memserver.ResilientConfig{
		// Attempt budgets: reads (a blocked guest fault has no
		// alternative) get more tries than uploads (the agent holds the
		// authoritative copy and can re-drive them).
		MaxRetries:      4,
		MutatingRetries: 2,
		// Reconnect backoff: base·2^attempt with seeded jitter, capped.
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		JitterSeed:  1, // deterministic backoff schedule for tests
		// Breaker: after 6 consecutive failures fail fast for 1 s, then
		// probe. While open, calls return ErrCircuitOpen immediately and
		// memtap reports the VM degraded (§4.4.4).
		BreakerThreshold: 6,
		BreakerCooldown:  time.Second,
		// Telemetry: label this client's series, publish to an isolated
		// registry (nil would use telemetry.Default).
		Name:     "example",
		Registry: telemetry.NewRegistry(),
	}
	rc, err := memserver.DialResilient(addr.String(), secret, cfg)
	if err != nil {
		panic(err)
	}
	defer rc.Close()

	// Upload a tiny image, then fetch one page back.
	im := pagestore.NewImage(256 * units.KiB)
	if err := im.Write(3, make([]byte, units.PageSize)); err != nil {
		panic(err)
	}
	snap, _, err := pagestore.EncodeAll(im)
	if err != nil {
		panic(err)
	}
	if err := rc.PutImage(1, 256*units.KiB, snap); err != nil {
		panic(err)
	}
	page, err := rc.GetPage(1, 3)
	if err != nil {
		panic(err)
	}

	st := rc.ResilienceStats()
	fmt.Println("page bytes:", len(page))
	fmt.Println("breaker:", st.State)
	fmt.Println("retries against a healthy server:", st.Retries)
	// Output:
	// page bytes: 4096
	// breaker: closed
	// retries against a healthy server: 0
}
