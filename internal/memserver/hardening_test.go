package memserver

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"oasis/internal/units"
)

// TestBrokenConnPoisonsClient verifies the satellite fix: after any
// transport error the client refuses further use with ErrClientBroken
// instead of reading misaligned frames from a half-written stream.
func TestBrokenConnPoisonsClient(t *testing.T) {
	s, addr := startServer(t)
	c := dial(t, addr)
	_, snap := makeSnapshot(t, 4*units.MiB, 2, 8)
	if err := c.PutImage(5, 4*units.MiB, snap); err != nil {
		t.Fatal(err)
	}

	// Kill the server mid-session; the in-flight op fails with a
	// transport error...
	s.Close()
	if _, err := c.GetPage(5, 1); err == nil {
		t.Fatal("GetPage succeeded against a closed server")
	}
	// ...and every subsequent op reports the poisoned connection.
	if _, err := c.GetPage(5, 2); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("want ErrClientBroken, got %v", err)
	}
	if _, err := c.Stats(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("want ErrClientBroken from Stats, got %v", err)
	}
	if !c.Broken() {
		t.Fatal("Broken() = false after transport error")
	}
}

// TestRemoteErrorKeepsConnHealthy: a server-side refusal is not a
// transport fault and must not poison the connection.
func TestRemoteErrorKeepsConnHealthy(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.GetPage(12345, 0); err == nil {
		t.Fatal("GetPage of unknown VM succeeded")
	}
	if c.Broken() {
		t.Fatal("remote error poisoned the connection")
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after remote error: %v", err)
	}
}

// TestServerIdleTimeout verifies the satellite fix: a silent client is
// dropped after the idle deadline instead of pinning a goroutine
// forever.
func TestServerIdleTimeout(t *testing.T) {
	s := NewServer(testSecret, t.Logf)
	s.SetIdleTimeout(100 * time.Millisecond)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	// A fully authenticated client that goes silent...
	c, err := Dial(addr.String(), testSecret, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// ...observes the server closing the connection: the next op fails
	// even though the server is still up and serving new connections.
	time.Sleep(300 * time.Millisecond)
	if _, err := c.Stats(); err == nil {
		t.Fatal("idle connection survived past the idle timeout")
	}
	c2 := dial(t, addr.String())
	if _, err := c2.Stats(); err != nil {
		t.Fatalf("fresh connection after idle drop: %v", err)
	}
}

// TestIdleTimeoutAppliesToUnauthenticatedConns: a TCP connection that
// never even authenticates is also bounded.
func TestIdleTimeoutAppliesToUnauthenticatedConns(t *testing.T) {
	s := NewServer(testSecret, t.Logf)
	s.SetIdleTimeout(100 * time.Millisecond)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Read the challenge, then stall without answering. The server must
	// hang up on its own.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readFrame(conn); err != nil {
		t.Fatalf("reading challenge: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err == nil {
		t.Fatal("server kept a stalled unauthenticated connection open")
	}
}
