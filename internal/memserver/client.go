package memserver

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// ErrClientBroken is returned by every operation after a transport error
// has poisoned the connection. A failed write or read can leave a frame
// half-transferred, so the stream's length-prefixed framing may be
// misaligned; continuing would let a caller read another request's bytes
// as its reply. The only safe recovery is a fresh connection (which
// ResilientClient automates).
var ErrClientBroken = errors.New("memserver: connection broken by a previous transport error")

// DefaultOpTimeout bounds one request/response round trip. A page server
// that takes longer than this is treated as failed: partial VMs block a
// guest fault for every outstanding request, so an unbounded wait wedges
// the VM harder than an error does.
const DefaultOpTimeout = 30 * time.Second

// Client is a connection to a memory page server. It is what a memtap
// process (or a host agent performing uploads) holds. Client serialises
// requests: the protocol is strictly request/response per connection.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	broken    bool
	opTimeout time.Duration

	// Reusable framing state, guarded by mu. Request frames are laid
	// out as segments in bufs (bufs[0] is always the 5-byte header
	// rebuilt per call in hdrArr); small frames coalesce into frame and
	// go out in one Write, large ones as vectored buffers. opArr holds
	// the fixed-size request prefix of the current op, so the PutChunk
	// and GetPage hot paths allocate nothing per call.
	hdrArr [5]byte
	opArr  [21]byte
	frame  []byte
	bufs   net.Buffers

	// upMAC, when non-nil, signs upload payloads with the negotiated
	// per-connection session MAC (see proto.go).
	upMAC *sessionHMAC
}

// Dial connects and authenticates to the server at addr with the shared
// secret.
func Dial(addr string, secret []byte, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("memserver: dial %s: %w", addr, err)
	}
	return NewClientConn(conn, secret)
}

// NewClientConn authenticates over an already-established connection and
// returns a client owning it. It is the hook point for wrapped
// transports (fault injection, custom dialers); Dial and DialTLS route
// through the same authentication.
func NewClientConn(conn net.Conn, secret []byte) (*Client, error) {
	c := &Client{conn: conn, opTimeout: DefaultOpTimeout}
	if err := c.authenticate(secret); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// SetOpTimeout bounds each request/response round trip (zero disables
// deadlines). The default is DefaultOpTimeout.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opTimeout = d
}

// Broken reports whether a transport error has poisoned the connection;
// every further operation returns ErrClientBroken.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// markBroken poisons the client after a transport error and closes the
// connection so the peer's goroutine is released too. Callers hold c.mu.
func (c *Client) markBroken() {
	c.broken = true
	c.conn.Close()
}

func (c *Client) authenticate(secret []byte) error {
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	typ, nonce, err := readFrame(c.conn)
	if err != nil {
		return fmt.Errorf("memserver: read challenge: %w", err)
	}
	if typ != msgChallenge {
		return errors.New("memserver: expected challenge")
	}
	h := hmac.New(sha256.New, secret)
	h.Write(nonce)
	// Handshake MAC plus offered capability flags (see proto.go).
	auth := h.Sum(nil)
	auth = append(auth, authFlagUploadMAC)
	if err := writeFrame(c.conn, msgAuth, auth); err != nil {
		return err
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return err
	}
	if typ == msgError {
		return remoteError(payload)
	}
	if typ != msgOK {
		return errors.New("memserver: unexpected auth reply")
	}
	// The msgOK payload echoes the flags the server accepted (empty from
	// a server that predates capability flags).
	if len(payload) >= 1 && payload[0]&authFlagUploadMAC != 0 {
		c.upMAC = sessionMAC(secret, nonce)
	}
	return nil
}

// UploadMACNegotiated reports whether upload payloads on this
// connection carry the per-chunk session MAC trailer.
func (c *Client) UploadMACNegotiated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.upMAC != nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends a request frame and returns the reply payload, mapping
// msgError replies to errors. Any transport error (failed write, failed
// or timed-out read, reply of an unexpected type) poisons the connection:
// the framing may be misaligned mid-frame, so subsequent calls get
// ErrClientBroken instead of another caller's bytes. A clean msgError
// reply is a server-level error, not a transport fault, and leaves the
// connection healthy.
func (c *Client) roundTrip(typ byte, payload []byte, wantReply byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bufs = append(c.bufs[:0], nil, payload)
	return c.roundTripBufsLocked(typ, wantReply, false)
}

// roundTripBufsLocked sends the request laid out in c.bufs[1:] (bufs[0]
// is reserved for the header, rebuilt here) and returns the reply
// payload. withMAC appends the session MAC trailer over the payload
// segments when the connection negotiated upload MACs. Callers hold
// c.mu and must have populated c.bufs with a nil first element.
func (c *Client) roundTripBufsLocked(typ byte, wantReply byte, withMAC bool) ([]byte, error) {
	if c.broken {
		return nil, ErrClientBroken
	}
	if err := c.writeRequestLocked(typ, withMAC); err != nil {
		c.markBroken()
		return nil, err
	}
	// hdrArr is free again once the request is on the wire; reusing it
	// for the reply header keeps empty-reply round trips allocation-free.
	rtyp, rpayload, err := readFrameHdr(c.conn, &c.hdrArr)
	if err != nil {
		c.markBroken()
		return nil, err
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	if rtyp == msgError {
		return nil, remoteError(rpayload)
	}
	if rtyp != wantReply {
		c.markBroken()
		return nil, fmt.Errorf("memserver: unexpected reply type %d", rtyp)
	}
	return rpayload, nil
}

// writeRequestLocked frames and sends the request laid out in c.bufs[1:]:
// optional session-MAC trailer, header into hdrArr, then one coalesced
// Write (or a vectored write past coalesceLimit). It allocates nothing
// in steady state — the alloc-gated framing tests call it directly.
// Callers hold c.mu.
func (c *Client) writeRequestLocked(typ byte, withMAC bool) error {
	if withMAC && c.upMAC != nil {
		c.upMAC.h.Reset()
		for _, s := range c.bufs[1:] {
			if len(s) > 0 {
				c.upMAC.h.Write(s)
			}
		}
		c.bufs = append(c.bufs, c.upMAC.h.Sum(c.upMAC.sum[:0]))
	}
	total := 0
	for _, s := range c.bufs[1:] {
		total += len(s)
	}
	binary.BigEndian.PutUint32(c.hdrArr[:4], uint32(total))
	c.hdrArr[4] = typ
	c.bufs[0] = c.hdrArr[:5]
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	}
	return writeFrameBufs(c.conn, &c.frame, &c.bufs)
}

// GetPage fetches one guest page, decompressing it. The returned slice
// must not be modified if the page was all zero (a shared buffer).
func (c *Client) GetPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	page, _, _, err := c.GetPageStaged(id, pfn)
	return page, err
}

// GetPageStaged is GetPage plus the stage split the fault-path tracer
// records: wire is the request/response round trip, decompress the
// client-side page decode. Memtap prefers this (via the optional
// StagedFetcher interface) so a /traces span can attribute fault
// latency to the network or the decompressor.
func (c *Client) GetPageStaged(id pagestore.VMID, pfn pagestore.PFN) (page []byte, wire, decompress time.Duration, err error) {
	c.mu.Lock()
	binary.BigEndian.PutUint32(c.opArr[:], uint32(id))
	binary.BigEndian.PutUint64(c.opArr[4:], uint64(pfn))
	c.bufs = append(c.bufs[:0], nil, c.opArr[:12])
	start := time.Now()
	reply, err := c.roundTripBufsLocked(msgGetPage, msgPage, false)
	wire = time.Since(start)
	c.mu.Unlock()
	if err != nil {
		return nil, wire, 0, err
	}
	if len(reply) < 2 {
		return nil, wire, 0, errors.New("memserver: short page reply")
	}
	token := binary.BigEndian.Uint16(reply)
	start = time.Now()
	page, err = pagestore.DecodePage(token, reply[2:])
	decompress = time.Since(start)
	if err == nil {
		decompressSeconds.Observe(decompress.Seconds())
	}
	return page, wire, decompress, err
}

// GetPages fetches a batch of guest pages in one round trip, for
// prefetchers converting a partial VM into a full one (§4.4.4). The
// result maps each requested PFN to its decompressed contents; all-zero
// pages share one buffer that must not be modified.
func (c *Client) GetPages(id pagestore.VMID, pfns []pagestore.PFN) (map[pagestore.PFN][]byte, error) {
	if len(pfns) == 0 {
		return map[pagestore.PFN][]byte{}, nil
	}
	reply, err := c.roundTrip(msgGetPages, encodeGetPagesRequest(id, pfns), msgPages)
	if err != nil {
		return nil, err
	}
	return parsePagesReply(reply)
}

// PutImage uploads a full snapshot as a VM's image, replacing any prior
// image for that VMID. The snapshot bytes are sent without an
// intermediate copy (vectored write past the coalesce limit), with the
// session MAC trailer when negotiated.
func (c *Client) PutImage(id pagestore.VMID, alloc units.Bytes, snapshot []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	binary.BigEndian.PutUint32(c.opArr[:], uint32(id))
	binary.BigEndian.PutUint64(c.opArr[4:], uint64(alloc))
	c.bufs = append(c.bufs[:0], nil, c.opArr[:12], snapshot)
	_, err := c.roundTripBufsLocked(msgPutImage, msgOK, true)
	return err
}

// PutDiff applies a differential snapshot to an existing image (§4.3
// differential upload).
func (c *Client) PutDiff(id pagestore.VMID, snapshot []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	binary.BigEndian.PutUint32(c.opArr[:], uint32(id))
	c.bufs = append(c.bufs[:0], nil, c.opArr[:4], snapshot)
	_, err := c.roundTripBufsLocked(msgPutDiff, msgOK, true)
	return err
}

// PutBegin opens a chunked streaming upload (see proto.go). Re-sending a
// Begin for the same upload id is a no-op that keeps staged chunks.
func (c *Client) PutBegin(id pagestore.VMID, uploadID uint64, kind byte, alloc units.Bytes) error {
	_, err := c.roundTrip(msgPutBegin, encodePutBegin(id, uploadID, kind, uint64(alloc)), msgOK)
	return err
}

// PutChunk stages one self-contained snapshot chunk of an open upload.
// Chunks may arrive in any order and over any connection.
func (c *Client) PutChunk(id pagestore.VMID, uploadID uint64, seq uint32, chunk []byte) error {
	return c.PutChunkRef(id, uploadID, seq, pagestore.ChunkRef{Body: chunk})
}

// PutChunkRef stages one chunk described by a pagestore.ChunkRef — the
// zero-copy form of PutChunk. The chunk's header, dictionary and body
// segments go straight from the encoded snapshot to the socket
// (vectored write), framed by reusable client scratch: the hot path
// performs no allocations and no copies of page bytes.
func (c *Client) PutChunkRef(id pagestore.VMID, uploadID uint64, seq uint32, chunk pagestore.ChunkRef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	binary.BigEndian.PutUint32(c.opArr[:], uint32(id))
	binary.BigEndian.PutUint64(c.opArr[4:], uploadID)
	binary.BigEndian.PutUint32(c.opArr[12:], seq)
	c.bufs = append(c.bufs[:0], nil, c.opArr[:16], chunk.Pre, chunk.Dict, chunk.Body)
	_, err := c.roundTripBufsLocked(msgPutChunk, msgOK, true)
	return err
}

// PutCommit validates that all n chunks arrived and applies the upload
// atomically; until it succeeds the VM's previous image stays visible.
func (c *Client) PutCommit(id pagestore.VMID, uploadID uint64, n uint32) error {
	_, err := c.roundTrip(msgPutCommit, encodePutCommit(id, uploadID, n), msgOK)
	return err
}

// Delete frees a VM's image (after full migration the source agent frees
// all resources, including memory-server state, §4.2).
func (c *Client) Delete(id pagestore.VMID) error {
	req := make([]byte, 4)
	binary.BigEndian.PutUint32(req, uint32(id))
	_, err := c.roundTrip(msgDeleteVM, req, msgOK)
	return err
}

// Stats fetches the server's counters.
func (c *Client) Stats() (Stats, error) {
	reply, err := c.roundTrip(msgStats, nil, msgStatsReply)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(reply, &st); err != nil {
		return Stats{}, fmt.Errorf("memserver: decode stats: %w", err)
	}
	return st, nil
}

// SetServing toggles whether the daemon serves pages. The host agent stops
// the daemon when the host wakes and its VMs return (§4.3).
func (c *Client) SetServing(on bool) error {
	b := byte(0)
	if on {
		b = 1
	}
	_, err := c.roundTrip(msgSetServing, []byte{b}, msgOK)
	return err
}
