package memserver

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// ErrClientBroken is returned by every operation after a transport error
// has poisoned the connection. A failed write or read can leave a frame
// half-transferred, so the stream's length-prefixed framing may be
// misaligned; continuing would let a caller read another request's bytes
// as its reply. The only safe recovery is a fresh connection (which
// ResilientClient automates).
var ErrClientBroken = errors.New("memserver: connection broken by a previous transport error")

// DefaultOpTimeout bounds one request/response round trip. A page server
// that takes longer than this is treated as failed: partial VMs block a
// guest fault for every outstanding request, so an unbounded wait wedges
// the VM harder than an error does.
const DefaultOpTimeout = 30 * time.Second

// Client is a connection to a memory page server. It is what a memtap
// process (or a host agent performing uploads) holds. Client serialises
// requests: the protocol is strictly request/response per connection.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	broken    bool
	opTimeout time.Duration
}

// Dial connects and authenticates to the server at addr with the shared
// secret.
func Dial(addr string, secret []byte, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("memserver: dial %s: %w", addr, err)
	}
	return NewClientConn(conn, secret)
}

// NewClientConn authenticates over an already-established connection and
// returns a client owning it. It is the hook point for wrapped
// transports (fault injection, custom dialers); Dial and DialTLS route
// through the same authentication.
func NewClientConn(conn net.Conn, secret []byte) (*Client, error) {
	c := &Client{conn: conn, opTimeout: DefaultOpTimeout}
	if err := c.authenticate(secret); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// SetOpTimeout bounds each request/response round trip (zero disables
// deadlines). The default is DefaultOpTimeout.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opTimeout = d
}

// Broken reports whether a transport error has poisoned the connection;
// every further operation returns ErrClientBroken.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// markBroken poisons the client after a transport error and closes the
// connection so the peer's goroutine is released too. Callers hold c.mu.
func (c *Client) markBroken() {
	c.broken = true
	c.conn.Close()
}

func (c *Client) authenticate(secret []byte) error {
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	typ, nonce, err := readFrame(c.conn)
	if err != nil {
		return fmt.Errorf("memserver: read challenge: %w", err)
	}
	if typ != msgChallenge {
		return errors.New("memserver: expected challenge")
	}
	h := hmac.New(sha256.New, secret)
	h.Write(nonce)
	if err := writeFrame(c.conn, msgAuth, h.Sum(nil)); err != nil {
		return err
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return err
	}
	if typ == msgError {
		return remoteError(payload)
	}
	if typ != msgOK {
		return errors.New("memserver: unexpected auth reply")
	}
	return nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends a request frame and returns the reply payload, mapping
// msgError replies to errors. Any transport error (failed write, failed
// or timed-out read, reply of an unexpected type) poisons the connection:
// the framing may be misaligned mid-frame, so subsequent calls get
// ErrClientBroken instead of another caller's bytes. A clean msgError
// reply is a server-level error, not a transport fault, and leaves the
// connection healthy.
func (c *Client) roundTrip(typ byte, payload []byte, wantReply byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, ErrClientBroken
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	}
	if err := writeFrame(c.conn, typ, payload); err != nil {
		c.markBroken()
		return nil, err
	}
	rtyp, rpayload, err := readFrame(c.conn)
	if err != nil {
		c.markBroken()
		return nil, err
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	if rtyp == msgError {
		return nil, remoteError(rpayload)
	}
	if rtyp != wantReply {
		c.markBroken()
		return nil, fmt.Errorf("memserver: unexpected reply type %d", rtyp)
	}
	return rpayload, nil
}

// GetPage fetches one guest page, decompressing it. The returned slice
// must not be modified if the page was all zero (a shared buffer).
func (c *Client) GetPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	page, _, _, err := c.GetPageStaged(id, pfn)
	return page, err
}

// GetPageStaged is GetPage plus the stage split the fault-path tracer
// records: wire is the request/response round trip, decompress the
// client-side page decode. Memtap prefers this (via the optional
// StagedFetcher interface) so a /traces span can attribute fault
// latency to the network or the decompressor.
func (c *Client) GetPageStaged(id pagestore.VMID, pfn pagestore.PFN) (page []byte, wire, decompress time.Duration, err error) {
	req := make([]byte, 12)
	binary.BigEndian.PutUint32(req, uint32(id))
	binary.BigEndian.PutUint64(req[4:], uint64(pfn))
	start := time.Now()
	reply, err := c.roundTrip(msgGetPage, req, msgPage)
	wire = time.Since(start)
	if err != nil {
		return nil, wire, 0, err
	}
	if len(reply) < 2 {
		return nil, wire, 0, errors.New("memserver: short page reply")
	}
	token := binary.BigEndian.Uint16(reply)
	start = time.Now()
	page, err = pagestore.DecodePage(token, reply[2:])
	decompress = time.Since(start)
	if err == nil {
		decompressSeconds.Observe(decompress.Seconds())
	}
	return page, wire, decompress, err
}

// GetPages fetches a batch of guest pages in one round trip, for
// prefetchers converting a partial VM into a full one (§4.4.4). The
// result maps each requested PFN to its decompressed contents; all-zero
// pages share one buffer that must not be modified.
func (c *Client) GetPages(id pagestore.VMID, pfns []pagestore.PFN) (map[pagestore.PFN][]byte, error) {
	if len(pfns) == 0 {
		return map[pagestore.PFN][]byte{}, nil
	}
	reply, err := c.roundTrip(msgGetPages, encodeGetPagesRequest(id, pfns), msgPages)
	if err != nil {
		return nil, err
	}
	return parsePagesReply(reply)
}

// PutImage uploads a full snapshot as a VM's image, replacing any prior
// image for that VMID.
func (c *Client) PutImage(id pagestore.VMID, alloc units.Bytes, snapshot []byte) error {
	req := make([]byte, 12, 12+len(snapshot))
	binary.BigEndian.PutUint32(req, uint32(id))
	binary.BigEndian.PutUint64(req[4:], uint64(alloc))
	req = append(req, snapshot...)
	_, err := c.roundTrip(msgPutImage, req, msgOK)
	return err
}

// PutDiff applies a differential snapshot to an existing image (§4.3
// differential upload).
func (c *Client) PutDiff(id pagestore.VMID, snapshot []byte) error {
	req := make([]byte, 4, 4+len(snapshot))
	binary.BigEndian.PutUint32(req, uint32(id))
	req = append(req, snapshot...)
	_, err := c.roundTrip(msgPutDiff, req, msgOK)
	return err
}

// PutBegin opens a chunked streaming upload (see proto.go). Re-sending a
// Begin for the same upload id is a no-op that keeps staged chunks.
func (c *Client) PutBegin(id pagestore.VMID, uploadID uint64, kind byte, alloc units.Bytes) error {
	_, err := c.roundTrip(msgPutBegin, encodePutBegin(id, uploadID, kind, uint64(alloc)), msgOK)
	return err
}

// PutChunk stages one self-contained snapshot chunk of an open upload.
// Chunks may arrive in any order and over any connection.
func (c *Client) PutChunk(id pagestore.VMID, uploadID uint64, seq uint32, chunk []byte) error {
	_, err := c.roundTrip(msgPutChunk, encodePutChunk(id, uploadID, seq, chunk), msgOK)
	return err
}

// PutCommit validates that all n chunks arrived and applies the upload
// atomically; until it succeeds the VM's previous image stays visible.
func (c *Client) PutCommit(id pagestore.VMID, uploadID uint64, n uint32) error {
	_, err := c.roundTrip(msgPutCommit, encodePutCommit(id, uploadID, n), msgOK)
	return err
}

// Delete frees a VM's image (after full migration the source agent frees
// all resources, including memory-server state, §4.2).
func (c *Client) Delete(id pagestore.VMID) error {
	req := make([]byte, 4)
	binary.BigEndian.PutUint32(req, uint32(id))
	_, err := c.roundTrip(msgDeleteVM, req, msgOK)
	return err
}

// Stats fetches the server's counters.
func (c *Client) Stats() (Stats, error) {
	reply, err := c.roundTrip(msgStats, nil, msgStatsReply)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(reply, &st); err != nil {
		return Stats{}, fmt.Errorf("memserver: decode stats: %w", err)
	}
	return st, nil
}

// SetServing toggles whether the daemon serves pages. The host agent stops
// the daemon when the host wakes and its VMs return (§4.3).
func (c *Client) SetServing(on bool) error {
	b := byte(0)
	if on {
		b = 1
	}
	_, err := c.roundTrip(msgSetServing, []byte{b}, msgOK)
	return err
}
