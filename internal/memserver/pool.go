package memserver

import (
	"fmt"
	"sync"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// DefaultPoolSize is the connection count DialPool uses when the config
// leaves Size unset. Four lanes cover the prefetch pipelining the memtap
// issues (a few batches in flight) without holding a socket per vCPU.
const DefaultPoolSize = 4

// PoolConfig configures a ClientPool.
type PoolConfig struct {
	// Size is the number of pooled connections (lanes). Values <= 0 take
	// DefaultPoolSize; 1 is allowed and behaves like a bare
	// ResilientClient behind the pool interface.
	Size int
	// Resilience configures every lane. Each lane gets its own
	// ResilientClient — own connection, retry budget, backoff and circuit
	// breaker — so one wedged connection cannot poison its siblings. The
	// JitterSeed is perturbed per lane to de-correlate backoff across the
	// pool, and OnStateChange (if set) is lifted to the pool level: it
	// fires on transitions of the AGGREGATE breaker state (see
	// ClientPool.BreakerState), not per lane, because that is the signal
	// callers act on (memtap's degraded flag).
	Resilience ResilientConfig
}

// ClientPool fans requests out over N authenticated connections to one
// memory server. The wire protocol is strictly request/response per
// connection — that serialization is preserved per lane (it is what makes
// the framing self-synchronizing and retries safe) — and parallelism
// comes from having N independent lanes. Each operation is dispatched to
// the least-loaded lane, so single-request traffic sticks to one warm
// connection while a pipelined prefetcher spreads its batches across all
// of them.
//
// ClientPool implements the same operation surface as ResilientClient
// (and thus memtap.PageClient); it is safe for concurrent use.
type ClientPool struct {
	lanes []*ResilientClient

	mu        sync.Mutex
	inflight  []int          // per-lane outstanding ops
	laneState []BreakerState // per-lane breaker, tracked via OnStateChange
	aggState  BreakerState   // derived: see aggregateLocked

	onStateChange func(from, to BreakerState)
	tel           *poolTel
	putTel        *putTel
}

// NewPool builds a pool of cfg.Size resilient lanes around
// cfg.Resilience.Dialer without connecting; lanes dial on first use.
// cfg.Resilience.Dialer must be set (as for NewResilient).
func NewPool(cfg PoolConfig) *ClientPool {
	if cfg.Size <= 0 {
		cfg.Size = DefaultPoolSize
	}
	p := &ClientPool{
		lanes:         make([]*ResilientClient, cfg.Size),
		inflight:      make([]int, cfg.Size),
		laneState:     make([]BreakerState, cfg.Size),
		onStateChange: cfg.Resilience.OnStateChange,
		tel:           newPoolTel(cfg.Resilience.Registry, cfg.Resilience.Name),
		putTel:        newPutTel(cfg.Resilience.Registry, cfg.Resilience.Name),
	}
	for i := range p.lanes {
		lane := i
		lcfg := cfg.Resilience
		// De-correlate the lanes' backoff jitter so a server restart does
		// not see N synchronized reconnect storms.
		lcfg.JitterSeed ^= uint64(lane) * 0x9E3779B97F4A7C15
		lcfg.OnStateChange = func(from, to BreakerState) { p.laneStateChanged(lane) }
		p.lanes[i] = NewResilient(lcfg)
	}
	p.tel.size.Set(float64(cfg.Size))
	return p
}

// DialPool returns a pool for the server at addr. Like DialResilient, the
// first lane connects eagerly so misconfiguration (bad address, bad
// secret) surfaces immediately; the remaining lanes dial lazily as load
// arrives, healing themselves independently afterwards.
func DialPool(addr string, secret []byte, cfg PoolConfig) (*ClientPool, error) {
	cfg.Resilience.withDefaults()
	if cfg.Resilience.Dialer == nil {
		secret = append([]byte(nil), secret...)
		dialTimeout := cfg.Resilience.DialTimeout
		cfg.Resilience.Dialer = func() (*Client, error) { return Dial(addr, secret, dialTimeout) }
	}
	p := NewPool(cfg)
	first := p.lanes[0]
	first.mu.Lock()
	_, err := first.ensureClientLocked()
	first.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("memserver: pool dial %s: %w", addr, err)
	}
	return p, nil
}

// Size returns the number of lanes.
func (p *ClientPool) Size() int { return len(p.lanes) }

// acquire picks the least-loaded lane, preferring lanes whose breaker is
// not open: while one connection's server-side socket is wedged, traffic
// flows over its healthy siblings instead of failing fast for no reason.
// If every breaker is open the least-loaded lane is returned anyway and
// the caller fails fast there (or rides its half-open probe).
func (p *ClientPool) acquire() int {
	p.mu.Lock()
	best, bestOpen := -1, -1
	for i := range p.lanes {
		if p.laneState[i] != BreakerOpen {
			if best < 0 || p.inflight[i] < p.inflight[best] {
				best = i
			}
		} else if bestOpen < 0 || p.inflight[i] < p.inflight[bestOpen] {
			bestOpen = i
		}
	}
	if best < 0 {
		best = bestOpen
	}
	p.inflight[best]++
	p.mu.Unlock()
	p.tel.dispatches.Inc()
	p.tel.inflight.Inc()
	return best
}

func (p *ClientPool) release(lane int) {
	p.mu.Lock()
	p.inflight[lane]--
	p.mu.Unlock()
	p.tel.inflight.Dec()
}

// do dispatches one operation to the least-loaded lane.
func (p *ClientPool) do(fn func(*ResilientClient) error) error {
	lane := p.acquire()
	defer p.release(lane)
	return fn(p.lanes[lane])
}

// laneStateChanged records a lane's breaker transition and recomputes the
// aggregate state, invoking the pool-level OnStateChange outside the lock
// when the aggregate moved.
//
// The lane's CURRENT state is re-read from the lane rather than taken
// from the callback arguments: breaker callbacks fire outside the lane's
// mutex, so two rapid transitions (open → half-open → closed) can be
// delivered out of order, and trusting the callback's "to" would park
// the cached state at a stale value forever once the lane stops
// transitioning. Re-reading converges: whichever delivery runs last
// sees the lane's settled state. (Lock order is p.mu → lane.mu; lane
// callbacks never run under lane.mu, so there is no inversion.)
func (p *ClientPool) laneStateChanged(lane int) {
	p.mu.Lock()
	p.laneState[lane] = p.lanes[lane].BreakerState()
	agg := p.aggregateLocked()
	from := p.aggState
	changed := agg != from
	if changed {
		p.aggState = agg
	}
	var open float64
	for _, s := range p.laneState {
		if s == BreakerOpen {
			open++
		}
	}
	p.mu.Unlock()
	p.tel.lanesOpen.Set(open)
	if changed && p.onStateChange != nil {
		p.onStateChange(from, agg)
	}
}

// aggregateLocked derives the pool's breaker state from its lanes: the
// pool is Open only when EVERY lane is open (one healthy connection still
// serves faults), HalfOpen when no lane is closed but a probe is in
// flight somewhere, Closed otherwise.
func (p *ClientPool) aggregateLocked() BreakerState {
	allOpen, anyHalf := true, false
	for _, s := range p.laneState {
		switch s {
		case BreakerOpen:
		case BreakerHalfOpen:
			anyHalf = true
			allOpen = false
		default:
			return BreakerClosed
		}
	}
	if allOpen {
		return BreakerOpen
	}
	if anyHalf {
		return BreakerHalfOpen
	}
	return BreakerClosed
}

// BreakerState returns the aggregate breaker state (see aggregateLocked).
// Memtap's Degraded check reads this: a pool is degraded only when no
// lane can reach the server.
func (p *ClientPool) BreakerState() BreakerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.aggState
}

// LaneStates snapshots each lane's breaker state (diagnostics, tests).
func (p *ClientPool) LaneStates() []BreakerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]BreakerState(nil), p.laneState...)
}

// ResilienceStats sums the lanes' counters; State is the aggregate.
func (p *ClientPool) ResilienceStats() ResilienceStats {
	var out ResilienceStats
	for _, lane := range p.lanes {
		st := lane.ResilienceStats()
		out.Retries += st.Retries
		out.Reconnects += st.Reconnects
		out.Failures += st.Failures
		out.BreakerOpens += st.BreakerOpens
	}
	out.State = p.BreakerState()
	return out
}

// Close shuts every lane's connection down. As with ResilientClient, the
// pool may still be used afterwards; lanes reconnect on demand.
func (p *ClientPool) Close() error {
	var first error
	for _, lane := range p.lanes {
		if err := lane.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// GetPage fetches one guest page over the least-loaded lane.
func (p *ClientPool) GetPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	var page []byte
	err := p.do(func(r *ResilientClient) error {
		var err error
		page, err = r.GetPage(id, pfn)
		return err
	})
	return page, err
}

// GetPageStaged fetches one page, reporting wire/decompress stage timings.
func (p *ClientPool) GetPageStaged(id pagestore.VMID, pfn pagestore.PFN) (page []byte, wire, decompress time.Duration, err error) {
	err = p.do(func(r *ResilientClient) error {
		var err error
		page, wire, decompress, err = r.GetPageStaged(id, pfn)
		return err
	})
	return page, wire, decompress, err
}

// GetPages fetches a batch of pages over the least-loaded lane. Pipelined
// prefetchers issue several GetPages concurrently; the pool spreads them
// across lanes so the batches genuinely overlap on the wire.
func (p *ClientPool) GetPages(id pagestore.VMID, pfns []pagestore.PFN) (map[pagestore.PFN][]byte, error) {
	var pages map[pagestore.PFN][]byte
	err := p.do(func(r *ResilientClient) error {
		var err error
		pages, err = r.GetPages(id, pfns)
		return err
	})
	return pages, err
}

// Stats fetches server counters.
func (p *ClientPool) Stats() (Stats, error) {
	var st Stats
	err := p.do(func(r *ResilientClient) error {
		var err error
		st, err = r.Stats()
		return err
	})
	return st, err
}

// PutImage uploads a full image.
func (p *ClientPool) PutImage(id pagestore.VMID, alloc units.Bytes, snapshot []byte) error {
	return p.do(func(r *ResilientClient) error { return r.PutImage(id, alloc, snapshot) })
}

// PutDiff applies a differential snapshot.
func (p *ClientPool) PutDiff(id pagestore.VMID, snapshot []byte) error {
	return p.do(func(r *ResilientClient) error { return r.PutDiff(id, snapshot) })
}

// Delete frees a VM's image.
func (p *ClientPool) Delete(id pagestore.VMID) error {
	return p.do(func(r *ResilientClient) error { return r.Delete(id) })
}

// SetServing toggles whether the daemon serves pages.
func (p *ClientPool) SetServing(on bool) error {
	return p.do(func(r *ResilientClient) error { return r.SetServing(on) })
}
