package memserver

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/rng"
	"oasis/internal/units"
)

var testSecret = []byte("oasis-test-secret")

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer(testSecret, t.Logf)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, testSecret, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func makeSnapshot(t *testing.T, alloc units.Bytes, seed uint64, pages int) (*pagestore.Image, []byte) {
	t.Helper()
	r := rng.New(seed)
	im := pagestore.NewImage(alloc)
	for i := 0; i < pages; i++ {
		p := make([]byte, units.PageSize)
		for j := 0; j < 64; j++ {
			p[r.Intn(len(p))] = byte(r.Uint64())
		}
		if err := im.Write(pagestore.PFN(i), p); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, err := pagestore.EncodeAll(im)
	if err != nil {
		t.Fatal(err)
	}
	return im, snap
}

func TestUploadAndFetch(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	src, snap := makeSnapshot(t, 16*units.MiB, 5, 50)
	if err := c.PutImage(1001, 16*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	for _, pfn := range []pagestore.PFN{0, 10, 49} {
		want, _ := src.Read(pfn)
		got, err := c.GetPage(1001, pfn)
		if err != nil {
			t.Fatalf("GetPage(%d): %v", pfn, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d mismatch", pfn)
		}
	}
	// Untouched page reads as zeros.
	z, err := c.GetPage(1001, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !pagestore.IsZeroPage(z) {
		t.Fatal("untouched page not zero")
	}
}

func TestGetPageErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.GetPage(9999, 0); err == nil {
		t.Error("unknown VM served")
	}
	_, snap := makeSnapshot(t, 1*units.MiB, 2, 4)
	if err := c.PutImage(7, 1*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPage(7, 1<<20); err == nil {
		t.Error("out-of-range pfn served")
	}
	// The connection survives error replies.
	if _, err := c.GetPage(7, 0); err != nil {
		t.Errorf("connection broken after error reply: %v", err)
	}
}

func TestPutDiff(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	src, snap := makeSnapshot(t, 4*units.MiB, 3, 20)
	if err := c.PutImage(5, 4*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	// Dirty a few pages and push only the delta.
	base := src.NextEpoch()
	newData := bytes.Repeat([]byte{0x5A}, int(units.PageSize))
	if err := src.Write(3, newData); err != nil {
		t.Fatal(err)
	}
	diff, n, err := pagestore.EncodeDirtySince(src, base)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("diff has %d pages, want 1", n)
	}
	if err := c.PutDiff(5, diff); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetPage(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("diff not applied")
	}
	if err := c.PutDiff(42, diff); err == nil {
		t.Error("diff for unknown VM accepted")
	}
}

func TestDelete(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, snap := makeSnapshot(t, 1*units.MiB, 4, 4)
	if err := c.PutImage(9, 1*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(9); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPage(9, 0); err == nil {
		t.Error("deleted VM still served")
	}
}

func TestSetServing(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, snap := makeSnapshot(t, 1*units.MiB, 6, 4)
	if err := c.PutImage(2, 1*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	if err := c.SetServing(false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPage(2, 0); err == nil {
		t.Error("page served while daemon stopped")
	} else if !strings.Contains(err.Error(), "not serving") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := c.SetServing(true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPage(2, 0); err != nil {
		t.Errorf("page not served after restart: %v", err)
	}
}

func TestStats(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, snap := makeSnapshot(t, 1*units.MiB, 8, 10)
	if err := c.PutImage(3, 1*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.GetPage(3, pagestore.PFN(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.VMs != 1 || st.PagesServed != 5 || st.PagesUploaded != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAuthRejectsBadSecret(t *testing.T) {
	_, addr := startServer(t)
	if _, err := Dial(addr, []byte("wrong"), 2*time.Second); err == nil {
		t.Fatal("bad secret accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t)
	src, snap := makeSnapshot(t, 8*units.MiB, 12, 100)
	if err := NewWithStoreImage(s, 77, 8*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			c, err := Dial(addr, testSecret, 2*time.Second)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				pfn := pagestore.PFN((g*25 + i) % 100)
				want, _ := src.Read(pfn)
				got, err := c.GetPage(77, pfn)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, want) {
					done <- errRemote("page mismatch")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.StatsSnapshot().PagesServed; got != 100 {
		t.Fatalf("PagesServed = %d, want 100", got)
	}
}

type errRemote string

func (e errRemote) Error() string { return string(e) }

// NewWithStoreImage installs a snapshot directly into a server's store,
// bypassing the network — the co-located SAS path a host uses.
func NewWithStoreImage(s *Server, id pagestore.VMID, alloc units.Bytes, snapshot []byte) error {
	im := pagestore.NewImage(alloc)
	if err := pagestore.ApplySnapshot(im, snapshot); err != nil {
		return err
	}
	s.Store().Put(id, im)
	return nil
}

func TestGetPagesBatch(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	src, snap := makeSnapshot(t, 8*units.MiB, 21, 60)
	if err := c.PutImage(88, 8*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	pfns := []pagestore.PFN{0, 5, 59, 100 /* zero page */}
	got, err := c.GetPages(88, pfns)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pfns) {
		t.Fatalf("got %d pages, want %d", len(got), len(pfns))
	}
	for _, pfn := range pfns {
		want, _ := src.Read(pfn)
		if !bytes.Equal(got[pfn], want) {
			t.Fatalf("pfn %d mismatch", pfn)
		}
	}
	// Empty batch is a no-op.
	empty, err := c.GetPages(88, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %d", err, len(empty))
	}
	// Unknown VM fails.
	if _, err := c.GetPages(999, pfns); err == nil {
		t.Error("batch for unknown VM served")
	}
}

func TestGetPagesBatchLimit(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, snap := makeSnapshot(t, 1*units.MiB, 30, 4)
	if err := c.PutImage(6, 1*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	big := make([]pagestore.PFN, maxBatchPages+1)
	if _, err := c.GetPages(6, big); err == nil {
		t.Error("oversized batch accepted")
	}
	// Connection survives the rejection.
	if _, err := c.GetPage(6, 0); err != nil {
		t.Errorf("connection broken after batch rejection: %v", err)
	}
}

// TestPersistenceAcrossRestart: with a persist directory, uploaded images
// survive a daemon restart — the durability the prototype gets from its
// shared SAS drive.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := NewServer(testSecret, t.Logf)
	if err := s1.SetPersistDir(dir); err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String(), testSecret, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	src, snap := makeSnapshot(t, 4*units.MiB, 51, 25)
	if err := c.PutImage(42, 4*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	// A differential update must be mirrored too.
	base := src.NextEpoch()
	mod := bytes.Repeat([]byte{0xAB}, int(units.PageSize))
	if err := src.Write(3, mod); err != nil {
		t.Fatal(err)
	}
	diff, _, err := pagestore.EncodeDirtySince(src, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutDiff(42, diff); err != nil {
		t.Fatal(err)
	}
	// Also a VM that gets deleted: its file must disappear.
	if err := c.PutImage(43, 1*units.MiB, snapOf(t, 1*units.MiB, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(43); err != nil {
		t.Fatal(err)
	}
	c.Close()
	s1.Close()

	// Restart: a fresh daemon over the same directory serves the images.
	s2 := NewServer(testSecret, t.Logf)
	if err := s2.SetPersistDir(dir); err != nil {
		t.Fatal(err)
	}
	n, err := s2.LoadPersisted()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d VMs, want 1 (deleted VM must not return)", n)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2, err := Dial(addr2.String(), testSecret, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.GetPage(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mod) {
		t.Fatal("diff-updated page lost across restart")
	}
	want, _ := src.Read(10)
	got, err = c2.GetPage(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("original page lost across restart")
	}
	if _, err := c2.GetPage(43, 0); err == nil {
		t.Fatal("deleted VM resurrected by restart")
	}
}

func snapOf(t *testing.T, alloc units.Bytes, pages int) []byte {
	t.Helper()
	_, snap := makeSnapshot(t, alloc, 99, pages)
	return snap
}
