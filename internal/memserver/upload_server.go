package memserver

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// Server side of the chunked streaming upload protocol (see proto.go for
// the framing and DESIGN.md §10 for the crash-atomicity argument). The
// life of an upload:
//
//  1. PutBegin opens a staging entry keyed by VMID. The VM's live image
//     is not touched.
//  2. PutChunks accumulate self-contained snapshot chunks, keyed by
//     sequence number, in any order and over any mix of connections.
//  3. PutCommit checks every chunk 0..n-1 arrived, decodes them in
//     parallel, and only then makes the result visible: a full image is
//     built in a private staging image and swapped into the store; a
//     diff is fully validated (decode + bounds) before the first page is
//     written to the live image, so application cannot fail half way.
//
// A failure anywhere before the commit's final swap leaves the previous
// image intact — the degradation path (§7) then serves the stale-but-
// consistent snapshot exactly as if the upload had never started.

// pendingUpload is one VM's staged, uncommitted upload.
type pendingUpload struct {
	uploadID uint64
	kind     byte
	alloc    units.Bytes
	chunks   map[uint32][]byte
}

// putBegin opens (or idempotently re-opens) a staging upload. A different
// upload id replaces any stale pending upload for the VM, collecting
// chunks abandoned by a crashed client.
func (s *Server) putBegin(id pagestore.VMID, uploadID uint64, kind byte, alloc uint64) error {
	if kind == putKindDiff {
		// A diff needs an existing image to land on; reject at begin so
		// the client learns before shipping chunks.
		if _, err := s.store.Get(id); err != nil {
			return err
		}
	}
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if p := s.uploads[id]; p != nil && p.uploadID == uploadID {
		return nil // retried Begin: keep already-staged chunks
	}
	s.uploads[id] = &pendingUpload{
		uploadID: uploadID,
		kind:     kind,
		alloc:    units.Bytes(alloc),
		chunks:   make(map[uint32][]byte),
	}
	return nil
}

// putChunk stages one chunk. Duplicate sequence numbers overwrite (the
// retried frame carries identical bytes); chunks for an already-committed
// upload id are acknowledged as no-ops.
func (s *Server) putChunk(id pagestore.VMID, uploadID uint64, seq uint32, chunk []byte) error {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	p := s.uploads[id]
	if p == nil || p.uploadID != uploadID {
		if s.committed[id] == uploadID {
			return nil // late retry of a chunk whose upload already committed
		}
		return fmt.Errorf("no open upload %d for vm %04d (PutBegin first)", uploadID, id)
	}
	if _, dup := p.chunks[seq]; !dup && len(p.chunks) >= maxUploadChunks {
		return fmt.Errorf("upload %d for vm %04d exceeds %d chunks", uploadID, id, maxUploadChunks)
	}
	p.chunks[seq] = chunk
	return nil
}

// putCommit validates and applies a staged upload atomically. On any
// error the staging entry survives (the client may re-send missing
// chunks and retry) and the VM's live image is untouched.
func (s *Server) putCommit(id pagestore.VMID, uploadID uint64, n uint32) error {
	s.upMu.Lock()
	p := s.uploads[id]
	if p == nil || p.uploadID != uploadID {
		last, ok := s.committed[id]
		s.upMu.Unlock()
		if ok && last == uploadID {
			return nil // retried Commit after a lost reply: already applied
		}
		return fmt.Errorf("no open upload %d for vm %04d", uploadID, id)
	}
	chunks := make([][]byte, n)
	for i := uint32(0); i < n; i++ {
		c, ok := p.chunks[i]
		if !ok {
			s.upMu.Unlock()
			return fmt.Errorf("upload %d for vm %04d missing chunk %d/%d", uploadID, id, i, n)
		}
		chunks[i] = c
	}
	if uint32(len(p.chunks)) != n {
		s.upMu.Unlock()
		return fmt.Errorf("upload %d for vm %04d has %d chunks, commit says %d", uploadID, id, len(p.chunks), n)
	}
	kind, alloc := p.kind, p.alloc
	s.upMu.Unlock()

	start := time.Now()
	pages, err := s.applyUpload(id, kind, alloc, chunks)
	if err != nil {
		return err
	}
	s.tel.applySecs.Observe(sinceSeconds(start))
	s.pagesUploaded.Add(pages)

	s.upMu.Lock()
	if cur := s.uploads[id]; cur != nil && cur.uploadID == uploadID {
		delete(s.uploads, id)
	}
	s.committed[id] = uploadID
	s.upMu.Unlock()
	return s.persist(id)
}

// applyUpload decodes the chunks in parallel and installs the result.
func (s *Server) applyUpload(id pagestore.VMID, kind byte, alloc units.Bytes, chunks [][]byte) (int64, error) {
	switch kind {
	case putKindImage:
		// Build the replacement in a private staging image; the store
		// swap below is the commit point.
		im := pagestore.NewImage(alloc)
		if err := forEachChunk(chunks, func(chunk []byte) error {
			return pagestore.ApplySnapshot(im, chunk)
		}); err != nil {
			return 0, err
		}
		s.store.Put(id, im)
		return im.TouchedPages(), nil

	case putKindDiff:
		im, err := s.store.Get(id)
		if err != nil {
			return 0, err
		}
		// Validate every chunk completely — framing, decompression, and
		// PFN bounds — before the first write lands, so the apply pass
		// below cannot fail part way through the live image.
		npages := im.NumPages()
		if err := forEachChunk(chunks, func(chunk []byte) error {
			return pagestore.DecodeSnapshot(chunk, func(pfn pagestore.PFN, _ []byte) error {
				if int64(pfn) >= npages {
					return fmt.Errorf("%w: pfn %d, allocation %d pages", pagestore.ErrOutOfRange, pfn, npages)
				}
				return nil
			})
		}); err != nil {
			return 0, err
		}
		var pages atomic.Int64
		if err := forEachChunk(chunks, func(chunk []byte) error {
			var n int64
			err := pagestore.DecodeSnapshot(chunk, func(pfn pagestore.PFN, page []byte) error {
				n++
				return im.Write(pfn, page)
			})
			pages.Add(n)
			return err
		}); err != nil {
			// Unreachable after validation; surfaced for completeness.
			return 0, err
		}
		return pages.Load(), nil

	default:
		return 0, fmt.Errorf("unknown upload kind %d", kind)
	}
}

// forEachChunk runs fn over every chunk with bounded parallelism. Chunks
// are independent (self-contained snapshots over disjoint or idempotently
// overwritten pages), so order does not matter; the target Image's own
// locking makes concurrent application safe.
func forEachChunk(chunks [][]byte, fn func([]byte) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		for _, c := range chunks {
			if err := fn(c); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(chunks))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(chunks[i])
			}
		}()
	}
	for i := range chunks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
