package memserver

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// Server side of the chunked streaming upload protocol (see proto.go for
// the framing and DESIGN.md §10 for the crash-atomicity argument). The
// life of an upload:
//
//  1. PutBegin opens a staging entry keyed by VMID. A full-image upload
//     also opens a private staging image. The VM's live image is not
//     touched.
//  2. PutChunks arrive in any order and over any mix of connections.
//     Full-image chunks decode straight into the staging image as they
//     arrive — the decode overlaps the wire transfer of later chunks
//     and the receive buffer can be reused because nothing retains the
//     chunk bytes. Diff chunks are copied and held staged (a diff must
//     not touch the live image before commit).
//  3. PutCommit waits for in-flight decodes, checks every chunk 0..n-1
//     arrived, and only then makes the result visible: the staging
//     image is swapped into the store; a diff is fully validated
//     (decode + bounds) before the first page is written to the live
//     image, so application cannot fail half way.
//
// A failure anywhere before the commit's final swap leaves the previous
// image intact — the degradation path (§7) then serves the stale-but-
// consistent snapshot exactly as if the upload had never started.

// pendingUpload is one VM's staged, uncommitted upload.
type pendingUpload struct {
	uploadID uint64
	kind     byte
	alloc    units.Bytes
	// seqs tracks staged chunk numbers. For a full image, true means
	// the chunk finished decoding into staging and false means a decode
	// claimed the seq and is in flight; for a diff every staged seq is
	// true.
	seqs map[uint32]bool
	// staging receives full-image chunks as they arrive; the store swap
	// at commit is what makes it visible.
	staging *pagestore.Image
	// chunks holds diff chunks (owned copies) until commit.
	chunks map[uint32][]byte
	// inflight counts decodes applying into staging right now; commit
	// waits for it after sealing.
	inflight sync.WaitGroup
	// sealed stops new chunk decodes once a commit began; a failed
	// commit (missing chunks) unseals so the client can re-send.
	sealed bool
}

// putBegin opens (or idempotently re-opens) a staging upload. A different
// upload id replaces any stale pending upload for the VM, collecting
// chunks abandoned by a crashed client.
func (s *Server) putBegin(id pagestore.VMID, uploadID uint64, kind byte, alloc uint64) error {
	if kind == putKindDiff {
		// A diff needs an existing image to land on; reject at begin so
		// the client learns before shipping chunks.
		if _, err := s.store.Get(id); err != nil {
			return err
		}
	}
	p := &pendingUpload{
		uploadID: uploadID,
		kind:     kind,
		alloc:    units.Bytes(alloc),
		seqs:     make(map[uint32]bool),
	}
	if kind == putKindImage {
		p.staging = pagestore.NewImage(units.Bytes(alloc))
	} else {
		p.chunks = make(map[uint32][]byte)
	}
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if cur := s.uploads[id]; cur != nil && cur.uploadID == uploadID {
		return nil // retried Begin: keep already-staged chunks
	}
	s.uploads[id] = p
	return nil
}

// putChunk stages one chunk. Duplicate sequence numbers are acknowledged
// without re-applying (the retried frame carries identical bytes);
// chunks for an already-committed upload id are acknowledged as no-ops.
// The chunk slice is only borrowed: full-image chunks are decoded before
// returning, diff chunks are copied — the caller may reuse the buffer.
func (s *Server) putChunk(id pagestore.VMID, uploadID uint64, seq uint32, chunk []byte) error {
	s.upMu.Lock()
	p := s.uploads[id]
	if p == nil || p.uploadID != uploadID {
		committed := s.committed[id] == uploadID
		s.upMu.Unlock()
		if committed {
			return nil // late retry of a chunk whose upload already committed
		}
		return fmt.Errorf("no open upload %d for vm %04d (PutBegin first)", uploadID, id)
	}
	if _, dup := p.seqs[seq]; dup {
		s.upMu.Unlock()
		return nil // duplicate: already staged or decoding right now
	}
	if len(p.seqs) >= maxUploadChunks {
		s.upMu.Unlock()
		return fmt.Errorf("upload %d for vm %04d exceeds %d chunks", uploadID, id, maxUploadChunks)
	}
	if p.kind == putKindDiff {
		p.chunks[seq] = append([]byte(nil), chunk...)
		p.seqs[seq] = true
		s.upMu.Unlock()
		return nil
	}
	if p.sealed {
		s.upMu.Unlock()
		return fmt.Errorf("upload %d for vm %04d is committing", uploadID, id)
	}
	// Full image: claim the seq and decode into the staging image
	// outside the lock — arrival-time application is what overlaps
	// decode with the wire and lets the receive buffer be reused.
	p.seqs[seq] = false
	p.inflight.Add(1)
	staging := p.staging
	s.upMu.Unlock()

	err := pagestore.ApplySnapshot(staging, chunk)

	s.upMu.Lock()
	if cur := s.uploads[id]; cur == p {
		if err != nil {
			delete(p.seqs, seq) // un-claim so a re-send can retry
		} else {
			p.seqs[seq] = true
		}
	}
	s.upMu.Unlock()
	p.inflight.Done()
	if err != nil {
		return fmt.Errorf("chunk %d of upload %d for vm %04d: %w", seq, uploadID, id, err)
	}
	return nil
}

// putCommit validates and applies a staged upload atomically. On any
// error the staging entry survives (the client may re-send missing
// chunks and retry) and the VM's live image is untouched.
func (s *Server) putCommit(id pagestore.VMID, uploadID uint64, n uint32) error {
	s.upMu.Lock()
	p := s.uploads[id]
	if p == nil || p.uploadID != uploadID {
		last, ok := s.committed[id]
		s.upMu.Unlock()
		if ok && last == uploadID {
			return nil // retried Commit after a lost reply: already applied
		}
		return fmt.Errorf("no open upload %d for vm %04d", uploadID, id)
	}

	start := time.Now()
	var pages int64
	switch p.kind {
	case putKindImage:
		// Seal against new decodes, wait out the in-flight ones, then
		// verify coverage. The store swap below is the commit point.
		p.sealed = true
		s.upMu.Unlock()
		p.inflight.Wait()
		s.upMu.Lock()
		if cur := s.uploads[id]; cur != p {
			s.upMu.Unlock()
			return fmt.Errorf("upload %d for vm %04d superseded during commit", uploadID, id)
		}
		if err := p.verifySeqs(n); err != nil {
			p.sealed = false // let the client re-send what is missing
			s.upMu.Unlock()
			return err
		}
		s.upMu.Unlock()
		s.store.Put(id, p.staging)
		pages = p.staging.TouchedPages()

	case putKindDiff:
		chunks := make([][]byte, n)
		for i := uint32(0); i < n; i++ {
			c, ok := p.chunks[i]
			if !ok {
				s.upMu.Unlock()
				return fmt.Errorf("upload %d for vm %04d missing chunk %d/%d", uploadID, id, i, n)
			}
			chunks[i] = c
		}
		if uint32(len(p.chunks)) != n {
			s.upMu.Unlock()
			return fmt.Errorf("upload %d for vm %04d has %d chunks, commit says %d", uploadID, id, len(p.chunks), n)
		}
		s.upMu.Unlock()
		var err error
		pages, err = s.applyDiff(id, chunks)
		if err != nil {
			return err
		}

	default:
		s.upMu.Unlock()
		return fmt.Errorf("unknown upload kind %d", p.kind)
	}
	s.tel.applySecs.Observe(sinceSeconds(start))
	s.pagesUploaded.Add(pages)

	s.upMu.Lock()
	if cur := s.uploads[id]; cur == p {
		delete(s.uploads, id)
	}
	s.committed[id] = uploadID
	s.upMu.Unlock()
	return s.persist(id)
}

// verifySeqs checks chunks 0..n-1 all finished staging. Callers hold
// s.upMu.
func (p *pendingUpload) verifySeqs(n uint32) error {
	for i := uint32(0); i < n; i++ {
		done, ok := p.seqs[i]
		if !ok || !done {
			return fmt.Errorf("upload %d missing chunk %d/%d", p.uploadID, i, n)
		}
	}
	if uint32(len(p.seqs)) != n {
		return fmt.Errorf("upload %d has %d chunks, commit says %d", p.uploadID, len(p.seqs), n)
	}
	return nil
}

// applyDiff validates every diff chunk completely — framing,
// decompression, and PFN bounds — before the first write lands, so the
// apply pass cannot fail part way through the live image.
func (s *Server) applyDiff(id pagestore.VMID, chunks [][]byte) (int64, error) {
	im, err := s.store.Get(id)
	if err != nil {
		return 0, err
	}
	npages := im.NumPages()
	if err := forEachChunk(chunks, func(chunk []byte) error {
		return pagestore.DecodeSnapshot(chunk, func(pfn pagestore.PFN, _ []byte) error {
			if int64(pfn) >= npages {
				return fmt.Errorf("%w: pfn %d, allocation %d pages", pagestore.ErrOutOfRange, pfn, npages)
			}
			return nil
		})
	}); err != nil {
		return 0, err
	}
	var pages atomic.Int64
	if err := forEachChunk(chunks, func(chunk []byte) error {
		var n int64
		err := pagestore.DecodeSnapshot(chunk, func(pfn pagestore.PFN, page []byte) error {
			n++
			return im.Write(pfn, page)
		})
		pages.Add(n)
		return err
	}); err != nil {
		// Unreachable after validation; surfaced for completeness.
		return 0, err
	}
	return pages.Load(), nil
}

// forEachChunk runs fn over every chunk with bounded parallelism. Chunks
// are independent (self-contained snapshots over disjoint or idempotently
// overwritten pages), so order does not matter; the target Image's own
// locking makes concurrent application safe.
func forEachChunk(chunks [][]byte, fn func([]byte) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		for _, c := range chunks {
			if err := fn(c); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(chunks))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(chunks[i])
			}
		}()
	}
	for i := range chunks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
