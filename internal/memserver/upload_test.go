package memserver

import (
	"bytes"
	"testing"

	"oasis/internal/pagestore"
	"oasis/internal/rng"
	"oasis/internal/units"
)

// dialTestPool returns a small pool against addr with fast resilience
// settings for upload tests.
func dialTestPool(t *testing.T, addr string, size int) *ClientPool {
	t.Helper()
	p, err := DialPool(addr, testSecret, PoolConfig{Size: size, Resilience: fastResilient()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// serverImageBytes canonicalises a VM's server-side image for comparison:
// the full-snapshot encoding is deterministic (sorted PFNs, deterministic
// per-page tokens), so equal bytes means equal images.
func serverImageBytes(t *testing.T, s *Server, id pagestore.VMID) []byte {
	t.Helper()
	im, err := s.Store().Get(id)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := pagestore.EncodeAll(im)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// rawSnapshot builds a snapshot of fully random (incompressible) pages,
// so chunk budgets translate predictably into multiple chunks.
func rawSnapshot(t *testing.T, alloc units.Bytes, seed uint64, pages int) []byte {
	t.Helper()
	r := rng.New(seed)
	im := pagestore.NewImage(alloc)
	p := make([]byte, units.PageSize)
	for i := 0; i < pages; i++ {
		for j := range p {
			p[j] = byte(r.Uint64())
		}
		if err := im.Write(pagestore.PFN(i), p); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, err := pagestore.EncodeAll(im)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestStreamImageMatchesPutImage holds the core equivalence: a streamed
// image upload — serial or parallel — must produce the same server-side
// image bytes as the one-shot PutImage path.
func TestStreamImageMatchesPutImage(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	p := dialTestPool(t, addr, 4)

	_, snap := makeSnapshot(t, 16*units.MiB, 11, 200)
	if err := c.PutImage(1, 16*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	want := serverImageBytes(t, srv, 1)

	// Tiny chunks force a real multi-chunk upload (~dozens of chunks).
	opts := PutOptions{ChunkBytes: 8 * int(units.PageSize)}
	for _, streams := range []int{1, 4} {
		opts.Streams = streams
		id := pagestore.VMID(100 + streams)
		if err := p.StreamImage(id, 16*units.MiB, snap, opts); err != nil {
			t.Fatalf("StreamImage(streams=%d): %v", streams, err)
		}
		if got := serverImageBytes(t, srv, id); !bytes.Equal(got, want) {
			t.Fatalf("streams=%d: streamed image diverged from PutImage", streams)
		}
	}
}

// TestStreamDiffMatchesPutDiff holds the same equivalence for the
// differential path.
func TestStreamDiffMatchesPutDiff(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	p := dialTestPool(t, addr, 4)

	src, snap := makeSnapshot(t, 8*units.MiB, 13, 100)
	for _, id := range []pagestore.VMID{1, 2, 3} {
		if err := c.PutImage(id, 8*units.MiB, snap); err != nil {
			t.Fatal(err)
		}
	}
	// Dirty a spread of pages, including a zeroed one.
	base := src.NextEpoch()
	pattern := bytes.Repeat([]byte{0xC3}, int(units.PageSize))
	for _, pfn := range []pagestore.PFN{0, 7, 42, 99, 150} {
		if err := src.Write(pfn, pattern); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Write(7, nil); err != nil {
		t.Fatal(err)
	}
	diff, _, err := pagestore.EncodeDirtySince(src, base)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.PutDiff(1, diff); err != nil {
		t.Fatal(err)
	}
	want := serverImageBytes(t, srv, 1)

	opts := PutOptions{ChunkBytes: 2 * int(units.PageSize)}
	for i, streams := range []int{1, 3} {
		opts.Streams = streams
		id := pagestore.VMID(2 + i)
		if err := p.StreamDiff(id, diff, opts); err != nil {
			t.Fatalf("StreamDiff(streams=%d): %v", streams, err)
		}
		if got := serverImageBytes(t, srv, id); !bytes.Equal(got, want) {
			t.Fatalf("streams=%d: streamed diff diverged from PutDiff", streams)
		}
	}
}

// TestUploadIdempotency exercises every retry-shaped replay the protocol
// promises to tolerate: re-Begin, duplicate chunk, re-Commit, and a late
// chunk landing after its upload committed.
func TestUploadIdempotency(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)

	snap := rawSnapshot(t, 4*units.MiB, 17, 40)
	chunks, err := pagestore.SplitSnapshot(snap, 4*int(units.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 3 {
		t.Fatalf("want >= 3 chunks for the test, got %d", len(chunks))
	}
	const id, uploadID = 9, 777
	if err := c.PutBegin(id, uploadID, putKindImage, 4*units.MiB); err != nil {
		t.Fatal(err)
	}
	if err := c.PutChunk(id, uploadID, 0, chunks[0]); err != nil {
		t.Fatal(err)
	}
	// Re-Begin keeps staged chunks; finish after it without resending 0.
	if err := c.PutBegin(id, uploadID, putKindImage, 4*units.MiB); err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq < len(chunks); seq++ {
		if err := c.PutChunk(id, uploadID, uint32(seq), chunks[seq]); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate chunk overwrites with identical bytes.
	if err := c.PutChunk(id, uploadID, 1, chunks[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.PutCommit(id, uploadID, uint32(len(chunks))); err != nil {
		t.Fatal(err)
	}
	want := serverImageBytes(t, srv, id)

	// A replayed commit (lost reply) acknowledges without re-applying.
	uploadedBefore := srv.StatsSnapshot().PagesUploaded
	if err := c.PutCommit(id, uploadID, uint32(len(chunks))); err != nil {
		t.Fatalf("re-commit: %v", err)
	}
	if got := srv.StatsSnapshot().PagesUploaded; got != uploadedBefore {
		t.Fatalf("re-commit re-applied: pages uploaded %d -> %d", uploadedBefore, got)
	}
	// A straggler chunk retry after commit is an acknowledged no-op.
	if err := c.PutChunk(id, uploadID, 2, chunks[2]); err != nil {
		t.Fatalf("late chunk after commit: %v", err)
	}
	if got := serverImageBytes(t, srv, id); !bytes.Equal(got, want) {
		t.Fatal("image changed after replayed frames")
	}
}

// TestUploadErrors covers the refusals: commit-before-begin, chunk
// without begin, commit with a missing chunk (upload stays open for the
// resend), and a diff begin against an unknown VM.
func TestUploadErrors(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)

	if err := c.PutCommit(3, 1, 1); err == nil {
		t.Error("commit before begin accepted")
	}
	if err := c.PutChunk(3, 1, 0, []byte("OAPS\x00\x00\x00\x00")); err == nil {
		t.Error("chunk before begin accepted")
	}
	if err := c.PutBegin(3, 1, putKindDiff, 0); err == nil {
		t.Error("diff begin for unknown VM accepted")
	}

	_, snap := makeSnapshot(t, 4*units.MiB, 19, 30)
	chunks, err := pagestore.SplitSnapshot(snap, 4*int(units.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	const id, uploadID = 4, 42
	if err := c.PutBegin(id, uploadID, putKindImage, 4*units.MiB); err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq < len(chunks); seq++ { // hold back chunk 0
		if err := c.PutChunk(id, uploadID, uint32(seq), chunks[seq]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PutCommit(id, uploadID, uint32(len(chunks))); err == nil {
		t.Fatal("commit with a missing chunk accepted")
	}
	if _, err := srv.Store().Get(id); err == nil {
		t.Fatal("failed commit made an image visible")
	}
	// The staging upload survived the refused commit: resend and retry.
	if err := c.PutChunk(id, uploadID, 0, chunks[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.PutCommit(id, uploadID, uint32(len(chunks))); err != nil {
		t.Fatalf("commit after resend: %v", err)
	}
	if _, err := srv.Store().Get(id); err != nil {
		t.Fatalf("committed image missing: %v", err)
	}
}

// TestAbandonedUploadLeavesImageIntact is the crash-atomicity property:
// an upload that never commits — and a newer upload that replaces it —
// leave the previous image bytes exactly as they were.
func TestAbandonedUploadLeavesImageIntact(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)

	src, snap := makeSnapshot(t, 8*units.MiB, 23, 80)
	const id = 6
	if err := c.PutImage(id, 8*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	want := serverImageBytes(t, srv, id)

	// A new version of the image, half-uploaded and abandoned.
	pattern := bytes.Repeat([]byte{0x99}, int(units.PageSize))
	for pfn := pagestore.PFN(0); pfn < 80; pfn++ {
		if err := src.Write(pfn, pattern); err != nil {
			t.Fatal(err)
		}
	}
	snap2, _, err := pagestore.EncodeAll(src)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := pagestore.SplitSnapshot(snap2, 8*int(units.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutBegin(id, 901, putKindImage, 8*units.MiB); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < len(chunks)/2; seq++ {
		if err := c.PutChunk(id, 901, uint32(seq), chunks[seq]); err != nil {
			t.Fatal(err)
		}
	}
	// Client "crashes" here: no commit. Reads still serve the old image.
	if got := serverImageBytes(t, srv, id); !bytes.Equal(got, want) {
		t.Fatal("abandoned upload perturbed the live image")
	}
	page, err := c.GetPage(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(page, pattern) {
		t.Fatal("read served a page from the uncommitted upload")
	}

	// A retry under a fresh upload id replaces the stale staging state
	// and commits cleanly.
	if err := c.PutBegin(id, 902, putKindImage, 8*units.MiB); err != nil {
		t.Fatal(err)
	}
	for seq := range chunks {
		if err := c.PutChunk(id, 902, uint32(seq), chunks[seq]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PutCommit(id, 902, uint32(len(chunks))); err != nil {
		t.Fatal(err)
	}
	page, err = c.GetPage(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, pattern) {
		t.Fatal("committed upload not visible")
	}
}

// TestStreamDiffOutOfRangeRejectedAtomically: a diff containing a PFN
// beyond the image's allocation is refused at commit validation, before
// any in-range page of the same upload lands.
func TestStreamDiffOutOfRangeRejectedAtomically(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)

	_, snap := makeSnapshot(t, 1*units.MiB, 29, 10)
	const id = 8
	if err := c.PutImage(id, 1*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	want := serverImageBytes(t, srv, id)

	// Build a diff from a larger image: in-range writes plus one beyond
	// the server image's allocation.
	big := pagestore.NewImage(4 * units.MiB)
	pattern := bytes.Repeat([]byte{0x41}, int(units.PageSize))
	for _, pfn := range []pagestore.PFN{0, 1, 1000} {
		if err := big.Write(pfn, pattern); err != nil {
			t.Fatal(err)
		}
	}
	diff, _, err := pagestore.EncodeAll(big)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := pagestore.SplitSnapshot(diff, 2*int(units.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutBegin(id, 55, putKindDiff, 0); err != nil {
		t.Fatal(err)
	}
	for seq := range chunks {
		if err := c.PutChunk(id, 55, uint32(seq), chunks[seq]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PutCommit(id, 55, uint32(len(chunks))); err == nil {
		t.Fatal("out-of-range diff committed")
	}
	if got := serverImageBytes(t, srv, id); !bytes.Equal(got, want) {
		t.Fatal("refused diff modified the live image")
	}
}
