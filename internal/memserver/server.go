package memserver

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/telemetry"
	"oasis/internal/units"
)

// Stats describes a server's activity, returned by the Stats request.
type Stats struct {
	VMs           int         `json:"vms"`
	PagesServed   int64       `json:"pages_served"`
	BytesServed   units.Bytes `json:"bytes_served"`
	PagesUploaded int64       `json:"pages_uploaded"`
	Serving       bool        `json:"serving"`
}

// DefaultIdleTimeout is how long a connection may sit idle (no inbound
// frame) before the server drops it. A stalled or half-open client —
// one whose host died without closing the TCP connection — would
// otherwise pin a goroutine and a conn-table entry forever.
const DefaultIdleTimeout = 2 * time.Minute

// Server is a memory page server daemon. One runs per host in an Oasis
// cluster; it owns the images the host wrote out before suspending.
type Server struct {
	secret []byte
	store  *pagestore.Store
	logf   func(format string, args ...any)

	// persistDir, when set, mirrors images to disk (see persist.go).
	persistDir string

	// idleTimeout bounds how long serveConn waits for the next frame.
	idleTimeout time.Duration
	// requireUploadMAC refuses the handshake of clients that do not
	// offer per-chunk upload MACs (downgrade refusal; see proto.go).
	requireUploadMAC bool
	// wrapConn, when set, wraps every accepted connection — the hook
	// the fault injector uses to perturb server-side transport.
	wrapConn func(net.Conn) net.Conn

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// Chunked streaming uploads staged but not yet committed, plus the
	// last committed upload id per VM (what makes a retried PutCommit
	// after a lost reply an acknowledgement instead of an error). One
	// pending upload per VM: a new upload id replaces a stale one, which
	// is also how abandoned uploads from crashed clients get collected.
	upMu      sync.Mutex
	uploads   map[pagestore.VMID]*pendingUpload
	committed map[pagestore.VMID]uint64

	serving       atomic.Bool
	pagesServed   atomic.Int64
	bytesServed   atomic.Int64
	pagesUploaded atomic.Int64

	// tel holds the live metric instruments (ops, bytes, latency, conns);
	// see telemetry.go and OBSERVABILITY.md.
	tel *serverTel
}

// NewServer creates a server that authenticates clients with the shared
// secret. logf may be nil to disable logging.
func NewServer(secret []byte, logf func(string, ...any)) *Server {
	return NewServerWithStore(secret, pagestore.NewStore(), logf)
}

// NewServerWithStore creates a server over an existing image store. A
// daemon restarting after a crash hands its reloaded store (or the
// persist-dir images) to the new instance so partial VMs resume against
// the same pages.
func NewServerWithStore(secret []byte, store *pagestore.Store, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		secret:      append([]byte(nil), secret...),
		store:       store,
		logf:        logf,
		idleTimeout: DefaultIdleTimeout,
		conns:       make(map[net.Conn]struct{}),
		uploads:     make(map[pagestore.VMID]*pendingUpload),
		committed:   make(map[pagestore.VMID]uint64),
		tel:         newServerTel(telemetry.Default),
	}
	s.serving.Store(true)
	return s
}

// SetMetricsRegistry rebinds the server's telemetry instruments to r
// (default: telemetry.Default). Call before Listen; tests use it to
// read counters from an isolated registry.
func (s *Server) SetMetricsRegistry(r *telemetry.Registry) { s.tel = newServerTel(r) }

// SetIdleTimeout bounds how long a connection may sit without sending a
// frame before it is dropped (zero disables the limit). The default is
// DefaultIdleTimeout; call before Listen.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// SetConnWrapper installs a wrapper applied to every accepted
// connection (fault injection, instrumentation). Call before Listen.
func (s *Server) SetConnWrapper(wrap func(net.Conn) net.Conn) { s.wrapConn = wrap }

// SetRequireUploadMAC makes the handshake refuse clients that do not
// offer the per-chunk upload MAC capability, so a stripped-down or
// downgraded client cannot feed the server unauthenticated image bytes.
// Call before Listen.
func (s *Server) SetRequireUploadMAC(on bool) { s.requireUploadMAC = on }

// Store exposes the underlying image store (hosts preload images through
// it when co-located, as the prototype's SAS path does).
func (s *Server) Store() *pagestore.Store { return s.store }

// InstallImage installs a full snapshot as a VM's image through the
// host-local (SAS) path, bypassing the network but keeping the upload
// counters accurate.
func (s *Server) InstallImage(id pagestore.VMID, alloc units.Bytes, snapshot []byte) error {
	im := pagestore.NewImage(alloc)
	if err := pagestore.ApplySnapshot(im, snapshot); err != nil {
		return err
	}
	s.store.Put(id, im)
	s.pagesUploaded.Add(im.TouchedPages())
	return s.persist(id)
}

// ApplyDiff applies a differential snapshot to an existing image through
// the host-local path.
func (s *Server) ApplyDiff(id pagestore.VMID, snapshot []byte) error {
	im, err := s.store.Get(id)
	if err != nil {
		return err
	}
	var n int64
	if err := pagestore.DecodeSnapshot(snapshot, func(pfn pagestore.PFN, page []byte) error {
		n++
		if page == nil {
			return im.Write(pfn, nil)
		}
		return im.Write(pfn, page)
	}); err != nil {
		return err
	}
	s.pagesUploaded.Add(n)
	return s.persist(id)
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memserver: listen: %w", err)
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr(), nil
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

// Snapshot of current statistics.
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		VMs:           s.store.Len(),
		PagesServed:   s.pagesServed.Load(),
		BytesServed:   units.Bytes(s.bytesServed.Load()),
		PagesUploaded: s.pagesUploaded.Load(),
		Serving:       s.serving.Load(),
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.logf("memserver: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.wrapConn != nil {
			conn = s.wrapConn(conn)
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) serveConn(raw net.Conn) {
	defer s.dropConn(raw)
	// Wire-byte accounting wraps the conn itself so every frame — auth
	// included — is counted exactly once, in both directions.
	conn := net.Conn(&countingConn{Conn: raw, in: s.tel.bytesIn, out: s.tel.bytesOut})
	s.tel.connsTotal.Inc()
	s.tel.connsActive.Inc()
	defer s.tel.connsActive.Dec()
	// A panic while handling one client (a malformed request tripping an
	// unforeseen edge, a fault-injection torn frame) must not take down
	// the daemon: other hosts' partial VMs depend on it staying up.
	defer func() {
		if r := recover(); r != nil {
			s.tel.panics.Inc()
			s.logf("memserver: conn %v: recovered from panic: %v", conn.RemoteAddr(), r)
		}
	}()
	if s.idleTimeout > 0 {
		raw.SetReadDeadline(time.Now().Add(s.idleTimeout))
	}
	// Per-connection reusable buffers: one goroutine serves a
	// connection, so the receive buffer, the reply under construction
	// and the compression scratch all live across frames instead of
	// being allocated per page (see pagestore.EncodePageAppend) — the
	// page-serving and chunk-receiving hot paths are allocation-free in
	// steady state.
	var scratch connScratch
	if err := s.authenticate(conn, &scratch); err != nil {
		s.tel.authFail.Inc()
		s.logf("memserver: auth failure from %v: %v", conn.RemoteAddr(), err)
		return
	}
	for {
		// Re-arm the idle deadline per frame: an active client may talk
		// for hours, but a silent one is dropped after idleTimeout.
		if s.idleTimeout > 0 {
			raw.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		typ, payload, err := readFrameReuse(conn, &scratch.hdr, &scratch.read)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.tel.idleDrops.Inc()
				s.logf("memserver: conn %v: dropped after %v idle", conn.RemoteAddr(), s.idleTimeout)
			}
			return // EOF, idle timeout, or broken connection; client is gone
		}
		if err := s.handle(conn, typ, payload, &scratch); err != nil {
			s.logf("memserver: conn %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// connScratch holds one connection's reusable buffers and the
// negotiated per-connection auth state.
type connScratch struct {
	hdr   [5]byte // inbound frame header (stack copies escape via io.ReadFull)
	read  []byte  // inbound frame payload (reused; handlers must not retain)
	reply []byte  // outgoing reply frame under construction
	comp  []byte  // lzf compression scratch
	upMAC *sessionHMAC
}

// beginReply starts a reply frame of the given type in the connection's
// reusable buffer, leaving room for the header.
func (sc *connScratch) beginReply(typ byte) []byte {
	return append(sc.reply[:0], 0, 0, 0, 0, typ)
}

// finishReply patches the frame length and sends the reply in a single
// write, keeping the buffer for the next frame.
func (sc *connScratch) finishReply(w io.Writer, out []byte) error {
	binary.BigEndian.PutUint32(out[:4], uint32(len(out)-5))
	sc.reply = out
	_, err := w.Write(out)
	return err
}

func (s *Server) authenticate(conn net.Conn, scratch *connScratch) error {
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	if err := writeFrame(conn, msgChallenge, nonce[:]); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != msgAuth {
		return errors.New("expected auth frame")
	}
	// Payload: 32-byte handshake MAC, optionally followed by one byte of
	// offered capability flags (see proto.go).
	if len(payload) < sha256.Size {
		writeFrame(conn, msgError, []byte("authentication failed"))
		return errors.New("short auth frame")
	}
	mac := payload[:sha256.Size]
	var offered byte
	if len(payload) > sha256.Size {
		offered = payload[sha256.Size]
	}
	h := hmac.New(sha256.New, s.secret)
	h.Write(nonce[:])
	want := h.Sum(nil)
	if subtle.ConstantTimeCompare(mac, want) != 1 {
		writeFrame(conn, msgError, []byte("authentication failed"))
		return errors.New("bad mac")
	}
	accepted := offered & authFlagUploadMAC
	if s.requireUploadMAC && accepted&authFlagUploadMAC == 0 {
		writeFrame(conn, msgError, []byte("per-chunk upload MAC required"))
		return errors.New("client refused upload MAC (downgrade refused)")
	}
	if accepted&authFlagUploadMAC != 0 {
		scratch.upMAC = sessionMAC(s.secret, nonce[:])
	}
	return writeFrame(conn, msgOK, []byte{accepted})
}

func (s *Server) handle(conn net.Conn, typ byte, payload []byte, scratch *connScratch) error {
	op := s.tel.op(typ)
	op.total.Inc()
	start := time.Now()
	defer func() { op.lat.Observe(sinceSeconds(start)) }()
	fail := func(err error) error {
		op.errors.Inc()
		return writeFrame(conn, msgError, []byte(err.Error()))
	}
	// Upload payloads carry the session MAC trailer when the handshake
	// negotiated it: verify and strip before parsing (amortized auth —
	// one HMAC pass per chunk, not per frame byte on the serving path).
	switch typ {
	case msgPutImage, msgPutDiff, msgPutChunk:
		if scratch.upMAC != nil {
			var err error
			if payload, err = scratch.upMAC.verify(payload); err != nil {
				return fail(err)
			}
		}
	}
	switch typ {
	case msgGetPage:
		if !s.serving.Load() {
			return fail(errors.New("daemon not serving (host awake)"))
		}
		if len(payload) != 12 {
			return fail(errors.New("malformed GetPage"))
		}
		vmid := pagestore.VMID(binary.BigEndian.Uint32(payload))
		pfn := pagestore.PFN(binary.BigEndian.Uint64(payload[4:]))
		im, err := s.store.Get(vmid)
		if err != nil {
			return fail(err)
		}
		page, err := im.Read(pfn)
		if err != nil {
			return fail(err)
		}
		// msgPage's reply body IS the page encoding (u16 token | payload),
		// built straight into the frame under construction in the
		// connection's reusable buffer and sent with a single write: the
		// GetPage reply hot path performs no allocations and no copies
		// beyond the compressor's own output.
		out := scratch.beginReply(msgPage)
		out, scratch.comp = pagestore.EncodePageAppend(out, scratch.comp, page)
		s.pagesServed.Add(1)
		s.bytesServed.Add(int64(len(out) - 5))
		return scratch.finishReply(conn, out)

	case msgGetPages:
		if !s.serving.Load() {
			return fail(errors.New("daemon not serving (host awake)"))
		}
		vmid, pfns, err := parseGetPagesRequest(payload)
		if err != nil {
			return fail(err)
		}
		n := len(pfns)
		s.tel.batchPages.Observe(float64(n))
		im, err := s.store.Get(vmid)
		if err != nil {
			return fail(err)
		}
		out := scratch.beginReply(msgPages)
		out = binary.BigEndian.AppendUint32(out, uint32(n))
		for _, pfn := range pfns {
			page, err := im.Read(pfn)
			if err != nil {
				return fail(err)
			}
			out, scratch.comp = appendPageEntry(out, pfn, page, scratch.comp)
		}
		s.pagesServed.Add(int64(n))
		s.bytesServed.Add(int64(len(out) - 5))
		return scratch.finishReply(conn, out)

	case msgPutImage:
		if len(payload) < 12 {
			return fail(errors.New("malformed PutImage"))
		}
		vmid := pagestore.VMID(binary.BigEndian.Uint32(payload))
		alloc := units.Bytes(binary.BigEndian.Uint64(payload[4:]))
		im := pagestore.NewImage(alloc)
		if err := pagestore.ApplySnapshot(im, payload[12:]); err != nil {
			return fail(err)
		}
		s.store.Put(vmid, im)
		s.pagesUploaded.Add(im.TouchedPages())
		if err := s.persist(vmid); err != nil {
			return fail(err)
		}
		return writeFrame(conn, msgOK, nil)

	case msgPutDiff:
		if len(payload) < 4 {
			return fail(errors.New("malformed PutDiff"))
		}
		vmid := pagestore.VMID(binary.BigEndian.Uint32(payload))
		im, err := s.store.Get(vmid)
		if err != nil {
			return fail(err)
		}
		before := im.TouchedPages()
		if err := pagestore.ApplySnapshot(im, payload[4:]); err != nil {
			return fail(err)
		}
		s.pagesUploaded.Add(im.TouchedPages() - before)
		if err := s.persist(vmid); err != nil {
			return fail(err)
		}
		return writeFrame(conn, msgOK, nil)

	case msgPutBegin:
		vmid, uploadID, kind, alloc, err := parsePutBegin(payload)
		if err != nil {
			return fail(err)
		}
		if err := s.putBegin(vmid, uploadID, kind, alloc); err != nil {
			return fail(err)
		}
		return writeFrame(conn, msgOK, nil)

	case msgPutChunk:
		vmid, uploadID, seq, chunk, err := parsePutChunk(payload)
		if err != nil {
			return fail(err)
		}
		if err := s.putChunk(vmid, uploadID, seq, chunk); err != nil {
			return fail(err)
		}
		return writeFrame(conn, msgOK, nil)

	case msgPutCommit:
		vmid, uploadID, chunks, err := parsePutCommit(payload)
		if err != nil {
			return fail(err)
		}
		if err := s.putCommit(vmid, uploadID, chunks); err != nil {
			return fail(err)
		}
		return writeFrame(conn, msgOK, nil)

	case msgDeleteVM:
		if len(payload) != 4 {
			return fail(errors.New("malformed DeleteVM"))
		}
		id := pagestore.VMID(binary.BigEndian.Uint32(payload))
		s.store.Delete(id)
		s.upMu.Lock()
		delete(s.uploads, id)
		delete(s.committed, id)
		s.upMu.Unlock()
		s.unpersist(id)
		return writeFrame(conn, msgOK, nil)

	case msgStats:
		data, err := json.Marshal(s.StatsSnapshot())
		if err != nil {
			return fail(err)
		}
		return writeFrame(conn, msgStatsReply, data)

	case msgSetServing:
		if len(payload) != 1 {
			return fail(errors.New("malformed SetServing"))
		}
		s.serving.Store(payload[0] != 0)
		return writeFrame(conn, msgOK, nil)

	default:
		return fail(fmt.Errorf("unknown message type %d", typ))
	}
}

// ListenAndServe runs a server on addr until it fails; a convenience for
// the memserverd command.
func ListenAndServe(addr string, secret []byte) error {
	s := NewServer(secret, log.Printf)
	bound, err := s.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("memserver: serving on %v", bound)
	select {} // the accept loop owns the lifecycle; block forever
}
