package memserver

import (
	"fmt"
	"sync"
	"sync/atomic"

	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// Client side of the chunked streaming upload protocol: split a snapshot
// into self-contained chunks and ship them concurrently over the pool's
// lanes, overlapping compression framing, wire transfer and server-side
// staging the way the prefetch path overlaps batch fetches. With
// Streams <= 1 the chunks go out sequentially over one lane, which is
// bit-for-bit the same server-side result as PutImage/PutDiff — the
// parallel path is a pure latency optimisation.

// DefaultChunkBytes is the streaming-upload chunk budget. 4 MiB keeps a
// chunk well under the frame ceiling while leaving enough chunks to keep
// every lane busy for the multi-hundred-MiB images consolidation ships.
const DefaultChunkBytes = 4 << 20

// chunkRetries bounds uploader-level re-issues of one chunk beyond the
// lane-level retry budget each attempt already gets.
const chunkRetries = 2

// PutOptions tunes a streaming upload.
type PutOptions struct {
	// Streams is the number of chunks kept in flight concurrently.
	// <= 1 streams sequentially (same bytes, same result, no overlap).
	Streams int
	// ChunkBytes bounds one chunk's encoded size. <= 0 takes
	// DefaultChunkBytes; values too small for a single raw page are
	// raised to the minimum by pagestore.SplitSnapshot.
	ChunkBytes int
}

func (o PutOptions) withDefaults() PutOptions {
	if o.Streams <= 0 {
		o.Streams = 1
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = DefaultChunkBytes
	}
	return o
}

// uploadSeq allocates process-unique upload ids. Uniqueness only matters
// per VM per server lifetime (the server keys staging by id and remembers
// the last committed one), so a process-wide counter is plenty.
var uploadSeq atomic.Uint64

// StreamImage uploads a full snapshot as a VM's image through the
// chunked streaming protocol. The image becomes visible atomically at
// commit; a failure anywhere leaves the VM's previous image intact.
func (p *ClientPool) StreamImage(id pagestore.VMID, alloc units.Bytes, snapshot []byte, opts PutOptions) error {
	return p.streamUpload(id, putKindImage, alloc, snapshot, opts)
}

// StreamDiff uploads a differential snapshot through the chunked
// streaming protocol; the diff applies to the live image atomically at
// commit after full validation.
func (p *ClientPool) StreamDiff(id pagestore.VMID, snapshot []byte, opts PutOptions) error {
	return p.streamUpload(id, putKindDiff, 0, snapshot, opts)
}

func (p *ClientPool) streamUpload(id pagestore.VMID, kind byte, alloc units.Bytes, snapshot []byte, opts PutOptions) error {
	opts = opts.withDefaults()
	// Chunk references point back into the snapshot buffer — no copies;
	// the client's vectored send stitches prefix+dict+body on the wire.
	chunks, err := pagestore.SplitSnapshotRefs(snapshot, opts.ChunkBytes)
	if err != nil {
		return fmt.Errorf("memserver: split snapshot: %w", err)
	}
	if len(chunks) > maxUploadChunks {
		return fmt.Errorf("memserver: snapshot needs %d chunks, limit %d (raise ChunkBytes)", len(chunks), maxUploadChunks)
	}
	uploadID := uploadSeq.Add(1)
	if err := p.do(func(r *ResilientClient) error {
		return r.PutBegin(id, uploadID, kind, alloc)
	}); err != nil {
		return err
	}
	if err := p.shipChunks(id, uploadID, chunks, opts.Streams); err != nil {
		return err
	}
	return p.do(func(r *ResilientClient) error {
		return r.PutCommit(id, uploadID, uint32(len(chunks)))
	})
}

// shipChunks sends every chunk, keeping up to streams in flight. Each
// chunk gets uploader-level re-issues on top of the per-attempt lane
// retries: a re-issued chunk lands on a (likely) different lane, and the
// server treats duplicates as idempotent overwrites.
func (p *ClientPool) shipChunks(id pagestore.VMID, uploadID uint64, chunks []pagestore.ChunkRef, streams int) error {
	send := func(seq int) error {
		p.putTel.inflight.Inc()
		defer p.putTel.inflight.Dec()
		var err error
		for attempt := 0; attempt <= chunkRetries; attempt++ {
			if attempt > 0 {
				p.putTel.retried.Inc()
			}
			err = p.do(func(r *ResilientClient) error {
				return r.PutChunkRef(id, uploadID, uint32(seq), chunks[seq])
			})
			if err == nil {
				p.putTel.chunks.Inc()
				return nil
			}
		}
		return fmt.Errorf("chunk %d/%d: %w", seq, len(chunks), err)
	}

	if streams <= 1 || len(chunks) <= 1 {
		for seq := range chunks {
			if err := send(seq); err != nil {
				return err
			}
		}
		return nil
	}

	if streams > len(chunks) {
		streams = len(chunks)
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		mu   sync.Mutex
		errs []error
	)
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := int(next.Add(1)) - 1
				if seq >= len(chunks) {
					return
				}
				if err := send(seq); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return fmt.Errorf("memserver: streaming upload: %w", errs[0])
	}
	return nil
}
