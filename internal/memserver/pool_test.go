package memserver

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oasis/internal/pagestore"
	"oasis/internal/units"
)

func TestPoolBasicOps(t *testing.T) {
	_, addr := startServer(t)
	src, snap := makeSnapshot(t, 8*units.MiB, 11, 48)

	cfg := PoolConfig{Size: 3, Resilience: fastResilient()}
	p, err := DialPool(addr, testSecret, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	if err := p.PutImage(7, 8*units.MiB, snap); err != nil {
		t.Fatal(err)
	}
	want, _ := src.Read(12)
	got, err := p.GetPage(7, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("GetPage mismatch through pool")
	}
	pages, err := p.GetPages(7, []pagestore.PFN{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 4 {
		t.Fatalf("GetPages returned %d pages", len(pages))
	}
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.VMs != 1 {
		t.Fatalf("server sees %d VMs", st.VMs)
	}
	if got := p.BreakerState(); got != BreakerClosed {
		t.Fatalf("aggregate breaker %v after healthy traffic", got)
	}
	if rs := p.ResilienceStats(); rs.Failures != 0 || rs.State != BreakerClosed {
		t.Fatalf("unexpected resilience stats %+v", rs)
	}
}

// TestPoolLeastLoadedDispatch pins the dispatch policy: with no load every
// lane is drained round-robin-ish by least-inflight, and held acquisitions
// spread across all lanes before any lane is doubled up.
func TestPoolLeastLoadedDispatch(t *testing.T) {
	p := NewPool(PoolConfig{Size: 4, Resilience: ResilientConfig{
		Dialer: func() (*Client, error) { panic("no dialing in this test") },
	}})
	seen := make(map[int]int)
	var held []int
	for i := 0; i < 4; i++ {
		lane := p.acquire()
		seen[lane]++
		held = append(held, lane)
	}
	if len(seen) != 4 {
		t.Fatalf("4 held acquisitions used %d lanes, want all 4 (dispatch convoyed)", len(seen))
	}
	// A fifth acquisition must double up on some lane, not fail.
	lane := p.acquire()
	if seen[lane] != 1 {
		t.Fatalf("fifth acquisition landed on lane %d with inflight %d", lane, seen[lane])
	}
	p.release(lane)
	for _, l := range held {
		p.release(l)
	}
}

// forceLaneState transitions a lane's real breaker and delivers its
// callback, the same path production transitions take.
func forceLaneState(p *ClientPool, lane int, s BreakerState) {
	r := p.lanes[lane]
	r.mu.Lock()
	cb := r.setStateLocked(s)
	r.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// TestPoolAvoidsOpenLanes checks that dispatch routes around a lane whose
// breaker is open while any healthy lane remains.
func TestPoolAvoidsOpenLanes(t *testing.T) {
	p := NewPool(PoolConfig{Size: 3, Resilience: ResilientConfig{
		Dialer: func() (*Client, error) { panic("no dialing in this test") },
	}})
	forceLaneState(p, 1, BreakerOpen)
	for i := 0; i < 16; i++ {
		lane := p.acquire()
		if lane == 1 {
			t.Fatal("dispatched to a lane with an open breaker while healthy lanes exist")
		}
		p.release(lane)
	}
	// With every breaker open, dispatch must still hand out a lane so the
	// caller gets the fail-fast (or rides the half-open probe).
	forceLaneState(p, 0, BreakerOpen)
	forceLaneState(p, 2, BreakerOpen)
	lane := p.acquire()
	p.release(lane)
}

// TestPoolLaneStateResyncAfterReorderedCallbacks pins the fix for a
// breaker-cache desync: lane callbacks fire outside the lane's mutex, so
// two rapid transitions (e.g. a half-open probe succeeding right after
// the breaker opened) can be DELIVERED out of order. The pool must
// converge on the lane's real state, not the callback's argument —
// otherwise the cached aggregate sticks at "open" forever once the lane
// settles, and the shard rebalancer counts a healthy backend as down.
func TestPoolLaneStateResyncAfterReorderedCallbacks(t *testing.T) {
	p := NewPool(PoolConfig{Size: 1, Resilience: ResilientConfig{
		Dialer: func() (*Client, error) { panic("no dialing in this test") },
	}})
	r := p.lanes[0]
	r.mu.Lock()
	cbOpen := r.setStateLocked(BreakerOpen)
	cbClosed := r.setStateLocked(BreakerClosed)
	r.mu.Unlock()
	// Deliver in reverse: the →closed callback lands first, the stale
	// →open one last. The cache must still settle on the lane's truth.
	cbClosed()
	cbOpen()
	if got := p.BreakerState(); got != BreakerClosed {
		t.Fatalf("aggregate breaker = %v after reordered callback delivery, want closed", got)
	}
}

// TestPoolAggregateBreaker proves the pool degrades only when every lane
// is down, and that pool-level OnStateChange fires on aggregate
// transitions — the contract memtap's degraded gauge depends on.
func TestPoolAggregateBreaker(t *testing.T) {
	rs := newRestartableServer(t)
	_, snap := makeSnapshot(t, 4*units.MiB, 5, 16)

	var transitions atomic.Int64
	var lastTo atomic.Int32
	cfg := fastResilient()
	cfg.MaxRetries = 2
	cfg.BreakerThreshold = 2
	cfg.OnStateChange = func(from, to BreakerState) {
		transitions.Add(1)
		lastTo.Store(int32(to))
	}
	p, err := DialPool(rs.addr, testSecret, PoolConfig{Size: 2, Resilience: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.PutImage(9, 4*units.MiB, snap); err != nil {
		t.Fatal(err)
	}

	rs.kill()
	deadline := time.Now().Add(10 * time.Second)
	for p.BreakerState() != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("pool never opened; lane states %v", p.LaneStates())
		}
		p.GetPage(9, 1) // errors expected; drive both lanes into failure
	}
	if BreakerState(lastTo.Load()) != BreakerOpen {
		t.Fatalf("aggregate OnStateChange last reported %v, want open", BreakerState(lastTo.Load()))
	}

	// One lane recovering must close the aggregate again.
	if err := rs.restart(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(cfg.BreakerCooldown + 10*time.Millisecond)
	for p.BreakerState() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("pool never closed after restart; lane states %v", p.LaneStates())
		}
		p.GetPage(9, 1)
		time.Sleep(5 * time.Millisecond)
	}
	if transitions.Load() < 2 {
		t.Fatalf("saw %d aggregate transitions, want >= 2 (open then closed)", transitions.Load())
	}
}

// TestPoolConcurrentClients hammers one pool from many goroutines against
// a live server; run under -race this checks the dispatch accounting and
// per-lane serialization hold up.
func TestPoolConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	src, snap := makeSnapshot(t, 8*units.MiB, 21, 64)
	p, err := DialPool(addr, testSecret, PoolConfig{Size: 4, Resilience: fastResilient()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.PutImage(3, 8*units.MiB, snap); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				pfn := pagestore.PFN((w*20 + i) % 64)
				want, _ := src.Read(pfn)
				var got []byte
				var err error
				if i%4 == 0 {
					pages, perr := p.GetPages(3, []pagestore.PFN{pfn})
					got, err = pages[pfn], perr
				} else {
					got, err = p.GetPage(3, pfn)
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("worker %d: pfn %d mismatch", w, pfn)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	p.mu.Lock()
	for i, n := range p.inflight {
		if n != 0 {
			t.Errorf("lane %d inflight = %d after quiesce", i, n)
		}
	}
	p.mu.Unlock()
}
