package host

import (
	"errors"
	"testing"

	"oasis/internal/pagestore"
	"oasis/internal/power"
	"oasis/internal/simtime"
	"oasis/internal/units"
	"oasis/internal/vm"
)

func newTestHost(sim *simtime.Simulator, id int, role Role) *Host {
	return New(sim, Config{
		ID:       id,
		Role:     role,
		Cap:      128 * units.GiB,
		Reserved: 4 * units.GiB,
		Profile:  power.DefaultProfile(),
	})
}

func TestCapacityAccounting(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	if h.Usable() != 124*units.GiB {
		t.Fatalf("Usable = %v", h.Usable())
	}
	v := &vm.VM{ID: 1, Alloc: 4 * units.GiB, Home: 0}
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	if h.Used() != 4*units.GiB || h.NumVMs() != 1 || v.Host != 0 {
		t.Fatalf("after add: used=%v n=%d host=%d", h.Used(), h.NumVMs(), v.Host)
	}
	if err := h.AddVM(v); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := h.RemoveVM(1); err != nil {
		t.Fatal(err)
	}
	if h.Used() != 0 {
		t.Fatalf("after remove: used=%v", h.Used())
	}
	if err := h.RemoveVM(1); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestCapacityLimit(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	// 31 x 4 GiB = 124 GiB fits exactly; the 32nd must fail.
	for i := 0; i < 31; i++ {
		if err := h.AddVM(&vm.VM{ID: pagestore.VMID(i + 1), Alloc: 4 * units.GiB}); err != nil {
			t.Fatalf("vm %d: %v", i, err)
		}
	}
	err := h.AddVM(&vm.VM{ID: 99, Alloc: 4 * units.GiB})
	var ce *ErrCapacity
	if !errors.As(err, &ce) {
		t.Fatalf("expected ErrCapacity, got %v", err)
	}
	if h.Fits(4 * units.GiB) {
		t.Error("Fits reports space on a full host")
	}
}

func TestOvercommit(t *testing.T) {
	sim := simtime.New()
	h := New(sim, Config{
		ID: 0, Cap: 128 * units.GiB, Reserved: 4 * units.GiB,
		Overcommit: 1.5, Profile: power.DefaultProfile(),
	})
	if h.Usable() != units.Bytes(float64(124*units.GiB)*1.5) {
		t.Fatalf("Usable with overcommit = %v", h.Usable())
	}
}

func TestPartialFootprintAndRecharge(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Consolidation)
	v := &vm.VM{ID: 2, Alloc: 4 * units.GiB, WorkingSet: 100 * units.MiB, Partial: true}
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	used := h.Used()
	if used != vm.ChunkRound(100*units.MiB) {
		t.Fatalf("partial VM charged %v", used)
	}
	// Working set grows; recharge accounts the delta.
	old := v.Footprint()
	v.WorkingSet = 200 * units.MiB
	if err := h.Recharge(v.ID, old); err != nil {
		t.Fatal(err)
	}
	if h.Used() != vm.ChunkRound(200*units.MiB) {
		t.Fatalf("after recharge: used=%v", h.Used())
	}
	if err := h.Recharge(77, 0); err == nil {
		t.Error("recharge of absent VM accepted")
	}
}

func TestExhaustion(t *testing.T) {
	sim := simtime.New()
	h := New(sim, Config{ID: 0, Cap: 8 * units.GiB, Reserved: 0, Profile: power.DefaultProfile()})
	v := &vm.VM{ID: 1, Alloc: 16 * units.GiB, WorkingSet: 4 * units.GiB, Partial: true}
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	if h.Exhausted() {
		t.Fatal("host exhausted prematurely")
	}
	old := v.Footprint()
	v.WorkingSet = 9 * units.GiB
	if err := h.Recharge(v.ID, old); err != nil {
		t.Fatal(err)
	}
	if !h.Exhausted() {
		t.Fatal("growth past capacity not detected")
	}
}

func TestSuspendResumeCycle(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	var sleptAt, wokeAt simtime.Time
	if err := h.Suspend(func() { sleptAt = sim.Now() }); err != nil {
		t.Fatal(err)
	}
	if h.State() != power.Suspending || !h.InTransit() {
		t.Fatalf("state after Suspend = %v", h.State())
	}
	sim.Run()
	if !h.Sleeping() {
		t.Fatalf("state after transition = %v", h.State())
	}
	if sleptAt != simtime.Time(power.DefaultProfile().SuspendTime) {
		t.Fatalf("slept at %v", sleptAt)
	}
	h.Wake(func() { wokeAt = sim.Now() })
	if h.State() != power.Resuming {
		t.Fatalf("state after Wake = %v", h.State())
	}
	sim.Run()
	if !h.Powered() {
		t.Fatalf("state after resume = %v", h.State())
	}
	want := sleptAt.Add(power.DefaultProfile().ResumeTime)
	if wokeAt != want {
		t.Fatalf("woke at %v, want %v", wokeAt, want)
	}
	if h.Suspends != 1 || h.Resumes != 1 {
		t.Fatalf("transition counters = %d/%d", h.Suspends, h.Resumes)
	}
}

func TestSuspendRefusals(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	if err := h.AddVM(&vm.VM{ID: 1, Alloc: units.GiB}); err != nil {
		t.Fatal(err)
	}
	if err := h.Suspend(nil); err == nil {
		t.Fatal("suspend with resident VMs accepted")
	}
	if err := h.RemoveVM(1); err != nil {
		t.Fatal(err)
	}
	if err := h.Suspend(nil); err != nil {
		t.Fatal(err)
	}
	if err := h.Suspend(nil); err == nil {
		t.Fatal("double suspend accepted")
	}
}

func TestWakeWhilePowered(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	ran := false
	h.Wake(func() { ran = true })
	if !ran {
		t.Fatal("wake on powered host did not run callback immediately")
	}
}

func TestWakeDuringSuspendQueues(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	if err := h.Suspend(nil); err != nil {
		t.Fatal(err)
	}
	var wokeAt simtime.Time
	h.Wake(func() { wokeAt = sim.Now() })
	sim.Run()
	if !h.Powered() {
		t.Fatalf("final state = %v", h.State())
	}
	p := power.DefaultProfile()
	want := simtime.Time(p.SuspendTime + p.ResumeTime)
	if wokeAt != want {
		t.Fatalf("woke at %v, want %v (suspend completes, then resume)", wokeAt, want)
	}
}

func TestAddVMWhileAsleepFails(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	if err := h.Suspend(nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if err := h.AddVM(&vm.VM{ID: 5, Alloc: units.GiB}); err == nil {
		t.Fatal("placement on sleeping host accepted")
	}
}

func TestMemServerPower(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	h.SetMemServer(true)
	if !h.MemServerOn() {
		t.Fatal("memory server not on")
	}
	sim.RunUntil(simtime.Hour)
	j := h.Meter().MemServerJoules(sim.Now())
	want := 42.2 * 3600
	if j < want-1 || j > want+1 {
		t.Fatalf("memserver joules = %v, want %v", j, want)
	}
	h.SetMemServer(true) // idempotent
}

func TestActivePowerTracking(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	v := &vm.VM{ID: 1, Alloc: 4 * units.GiB, Active: true}
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	if h.ActiveVMs() != 1 {
		t.Fatal("active VM not counted")
	}
	v.Active = false
	h.NoteVMStateChanged()
	if h.ActiveVMs() != 0 {
		t.Fatal("state change not tracked")
	}
}

func TestWakeDuringResumeQueuesCallback(t *testing.T) {
	sim := simtime.New()
	h := newTestHost(sim, 0, Compute)
	if err := h.Suspend(nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// First wake starts the resume; a second wake during Resuming must
	// queue its callback for the same completion.
	var first, second simtime.Time
	h.Wake(func() { first = sim.Now() })
	if h.State() != power.Resuming {
		t.Fatalf("state = %v", h.State())
	}
	h.Wake(func() { second = sim.Now() })
	sim.Run()
	if !h.Powered() {
		t.Fatalf("state = %v", h.State())
	}
	if first != second || first == 0 {
		t.Fatalf("callbacks fired at %v and %v, want same instant", first, second)
	}
	if h.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1 (no double resume)", h.Resumes)
	}
}

func TestRolesAndStrings(t *testing.T) {
	if Compute.String() != "compute" || Consolidation.String() != "consolidation" {
		t.Error("Role.String broken")
	}
	sim := simtime.New()
	h := newTestHost(sim, 3, Consolidation)
	s := h.String()
	if s == "" {
		t.Error("empty host string")
	}
	ce := &ErrCapacity{Host: 3, Need: units.GiB, Free: units.MiB}
	if ce.Error() == "" {
		t.Error("empty capacity error")
	}
}
