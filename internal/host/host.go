// Package host models a physical server in an Oasis cluster: its memory
// capacity, the VMs resident on it, its ACPI power-state machine with the
// measured S3 transition times, and its attached low-power memory server.
package host

import (
	"fmt"

	"oasis/internal/pagestore"
	"oasis/internal/power"
	"oasis/internal/simtime"
	"oasis/internal/units"
	"oasis/internal/vm"
)

// Role distinguishes compute (home) hosts from consolidation hosts (§3.1,
// Figure 3).
type Role int

// Host roles.
const (
	Compute Role = iota
	Consolidation
)

// String renders the role name.
func (r Role) String() string {
	if r == Consolidation {
		return "consolidation"
	}
	return "compute"
}

// ErrCapacity is returned when a placement would exceed host memory.
type ErrCapacity struct {
	Host int
	Need units.Bytes
	Free units.Bytes
}

// Error implements error.
func (e *ErrCapacity) Error() string {
	return fmt.Sprintf("host %d: need %v but only %v free", e.Host, e.Need, e.Free)
}

// Host is one physical server.
type Host struct {
	ID   int
	Name string
	Role Role

	// Cap is total RAM; Reserved is the slice the administrative domain
	// (dom0) and hypervisor keep.
	Cap      units.Bytes
	Reserved units.Bytes

	// Overcommit scales usable memory; the paper's assumption 1 notes
	// memory over-commitment is safe only up to ~1.5x. Default 1.0.
	Overcommit float64

	sim     *simtime.Simulator
	profile power.Profile
	meter   *power.Meter

	state       power.State
	pendingWake []func()
	memServerOn bool

	// onChange, if set, runs after every change to the host's memory
	// accounting (AddVM/RemoveVM/Recharge, via refreshPower) or power
	// state (setState). The cluster's capacity index subscribes here to
	// stay current without rescanning hosts; the callback must be O(1).
	onChange func(*Host)

	vms  map[pagestore.VMID]*vm.VM
	used units.Bytes
	// active caches the count of resident active VMs. The power model
	// reads it on every footprint recharge (fleet-scale runs recharge
	// hundreds of VMs per tick), so it must not be a map scan; AddVM,
	// RemoveVM and NoteVMStateChanged keep it exact.
	active int

	// Transition counters for the evaluation.
	Suspends int
	Resumes  int
}

// Config describes a host to create.
type Config struct {
	ID         int
	Name       string
	Role       Role
	Cap        units.Bytes
	Reserved   units.Bytes
	Overcommit float64
	Profile    power.Profile
}

// New creates a powered host attached to the simulator's clock.
func New(sim *simtime.Simulator, cfg Config) *Host {
	if cfg.Overcommit <= 0 {
		cfg.Overcommit = 1.0
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("host-%d", cfg.ID)
	}
	return &Host{
		ID:         cfg.ID,
		Name:       cfg.Name,
		Role:       cfg.Role,
		Cap:        cfg.Cap,
		Reserved:   cfg.Reserved,
		Overcommit: cfg.Overcommit,
		sim:        sim,
		profile:    cfg.Profile,
		meter:      power.NewMeter(cfg.Profile),
		state:      power.Powered,
		vms:        make(map[pagestore.VMID]*vm.VM),
	}
}

// State returns the host's power state.
func (h *Host) State() power.State { return h.state }

// Powered reports whether the host can run VMs right now.
func (h *Host) Powered() bool { return h.state == power.Powered }

// Sleeping reports whether the host is in S3.
func (h *Host) Sleeping() bool { return h.state == power.Sleeping }

// InTransit reports whether the host is between power modes.
func (h *Host) InTransit() bool {
	return h.state == power.Suspending || h.state == power.Resuming
}

// Meter exposes the host's energy meter.
func (h *Host) Meter() *power.Meter { return h.meter }

// Usable returns the memory available to VMs.
func (h *Host) Usable() units.Bytes {
	return units.Bytes(float64(h.Cap-h.Reserved) * h.Overcommit)
}

// Used returns the memory pinned by resident VMs.
func (h *Host) Used() units.Bytes { return h.used }

// Free returns unpinned usable memory.
func (h *Host) Free() units.Bytes { return h.Usable() - h.used }

// Fits reports whether need bytes can be placed on the host.
func (h *Host) Fits(need units.Bytes) bool { return need <= h.Free() }

// NumVMs returns the count of resident VMs.
func (h *Host) NumVMs() int { return len(h.vms) }

// VMs returns the resident VMs (unspecified order).
func (h *Host) VMs() []*vm.VM {
	out := make([]*vm.VM, 0, len(h.vms))
	for _, v := range h.vms {
		out = append(out, v)
	}
	return out
}

// VM returns a resident VM by id, or nil.
func (h *Host) VM(id pagestore.VMID) *vm.VM { return h.vms[id] }

// ActiveVMs counts resident active VMs. O(1): the count is maintained
// incrementally, because the energy meter re-reads it on every
// footprint recharge and a map scan here dominated whole-fleet
// simulation profiles.
func (h *Host) ActiveVMs() int { return h.active }

// recountActive re-derives the cached active count from resident VM
// state. Called when a resident VM flips between active and idle — the
// host cannot see the flip itself, only be told after the fact.
func (h *Host) recountActive() {
	n := 0
	for _, v := range h.vms {
		if v.Active {
			n++
		}
	}
	h.active = n
}

// AddVM places a VM on the host, charging its footprint. It fails if the
// host lacks capacity or is not powered.
func (h *Host) AddVM(v *vm.VM) error {
	if h.state != power.Powered {
		return fmt.Errorf("host %d: cannot place vm%04d while %v", h.ID, v.ID, h.state)
	}
	need := v.Footprint()
	if !h.Fits(need) {
		return &ErrCapacity{Host: h.ID, Need: need, Free: h.Free()}
	}
	if _, ok := h.vms[v.ID]; ok {
		return fmt.Errorf("host %d: vm%04d already resident", h.ID, v.ID)
	}
	h.vms[v.ID] = v
	h.used += need
	if v.Active {
		h.active++
	}
	v.Host = h.ID
	h.refreshPower()
	return nil
}

// RemoveVM takes a VM off the host, releasing its footprint.
func (h *Host) RemoveVM(id pagestore.VMID) error {
	v, ok := h.vms[id]
	if !ok {
		return fmt.Errorf("host %d: vm%04d not resident", h.ID, id)
	}
	delete(h.vms, id)
	h.used -= v.Footprint()
	if v.Active {
		h.active--
	}
	h.refreshPower()
	return nil
}

// Recharge re-accounts a resident VM's footprint after its residency mode
// or working set changed. delta is applied against host capacity; growth
// beyond capacity is allowed here (detection happens in the manager's
// exhaustion check) so that working-set growth can actually exhaust a
// host, as §3.2 describes.
func (h *Host) Recharge(id pagestore.VMID, old units.Bytes) error {
	v, ok := h.vms[id]
	if !ok {
		return fmt.Errorf("host %d: vm%04d not resident", h.ID, id)
	}
	h.used += v.Footprint() - old
	h.refreshPower()
	return nil
}

// Exhausted reports whether resident footprints exceed usable memory.
func (h *Host) Exhausted() bool { return h.used > h.Usable() }

// SetOnChange registers the change callback; nil unregisters. At most
// one subscriber (the owning cluster's capacity index).
func (h *Host) SetOnChange(fn func(*Host)) { h.onChange = fn }

// refreshPower re-derives meter inputs from resident VM states.
func (h *Host) refreshPower() {
	h.meter.SetActiveVMs(h.sim.Now(), h.ActiveVMs())
	if h.onChange != nil {
		h.onChange(h)
	}
}

// NoteVMStateChanged must be called after a resident VM flips between
// active and idle so the power model tracks the load.
func (h *Host) NoteVMStateChanged() {
	h.recountActive()
	h.refreshPower()
}

// MemServerOn reports whether the host's low-power memory server is
// powered.
func (h *Host) MemServerOn() bool { return h.memServerOn }

// SetMemServer powers the host's memory server on or off.
func (h *Host) SetMemServer(on bool) {
	if h.memServerOn == on {
		return
	}
	h.memServerOn = on
	h.meter.SetMemServer(h.sim.Now(), on)
}

// Suspend starts the transition to S3. It fails if VMs are resident (the
// manager must migrate them first) or the host is not powered. done, if
// non-nil, runs when the host reaches S3.
func (h *Host) Suspend(done func()) error {
	if h.state != power.Powered {
		return fmt.Errorf("host %d: suspend while %v", h.ID, h.state)
	}
	if len(h.vms) > 0 {
		return fmt.Errorf("host %d: suspend with %d resident VMs", h.ID, len(h.vms))
	}
	h.setState(power.Suspending)
	h.Suspends++
	h.sim.After(h.profile.SuspendTime, fmt.Sprintf("host%d-suspend", h.ID), func() {
		h.setState(power.Sleeping)
		if done != nil {
			done()
		}
		h.drainWakes()
	})
	return nil
}

// Wake brings a sleeping host back to Powered (the manager sends a
// Wake-on-LAN, §4.1). done runs once the host is powered; if the host is
// mid-suspend the wake is queued behind the completing transition, and if
// it is already powered done runs immediately.
func (h *Host) Wake(done func()) {
	switch h.state {
	case power.Powered:
		if done != nil {
			done()
		}
	case power.Resuming:
		if done != nil {
			h.pendingWake = append(h.pendingWake, done)
		}
	case power.Suspending:
		// Queue: the resume starts after the suspend completes.
		h.pendingWake = append(h.pendingWake, func() {})
		if done != nil {
			h.pendingWake = append(h.pendingWake, done)
		}
	case power.Sleeping:
		h.startResume(done)
	}
}

func (h *Host) startResume(done func()) {
	h.setState(power.Resuming)
	h.Resumes++
	if done != nil {
		h.pendingWake = append(h.pendingWake, done)
	}
	h.sim.After(h.profile.ResumeTime, fmt.Sprintf("host%d-resume", h.ID), func() {
		h.setState(power.Powered)
		cbs := h.pendingWake
		h.pendingWake = nil
		for _, cb := range cbs {
			cb()
		}
	})
}

// drainWakes fires a queued resume after a suspend completes.
func (h *Host) drainWakes() {
	if h.state == power.Sleeping && len(h.pendingWake) > 0 {
		cbs := h.pendingWake
		h.pendingWake = nil
		h.startResume(func() {
			for _, cb := range cbs {
				cb()
			}
		})
	}
}

func (h *Host) setState(s power.State) {
	h.state = s
	h.meter.SetState(h.sim.Now(), s)
	if h.onChange != nil {
		h.onChange(h)
	}
}

// String summarises the host.
func (h *Host) String() string {
	return fmt.Sprintf("%s(%v,%v,%d vms,%v/%v)", h.Name, h.Role, h.state, len(h.vms), h.used, h.Usable())
}
