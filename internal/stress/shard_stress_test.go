package stress

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"oasis/internal/faultinject"
	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/memserver/shard"
	"oasis/internal/memtap"
	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// TestShardFabricKillOneBackend is the kill-a-shard chaos test: a memtap
// runs against a 3-backend, 2-replica fabric whose connections storm
// (dropped reads/writes, torn frames), and one entire backend dies
// mid-run. Every fault must still land correct bytes — replication turns
// a shard outage into failover latency, not failed reads — and the
// memtap must not report degraded, because the fabric aggregate breaker
// stays closed while replicas serve.
func TestShardFabricKillOneBackend(t *testing.T) {
	const (
		vmid    = pagestore.VMID(64)
		workers = 48
		touches = 24
	)
	alloc := 16 * units.MiB // 4096 pages = 4 placement ranges at the default geometry

	src := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < src.NumPages(); pfn++ {
		page := make([]byte, units.PageSize)
		for i := 0; i < len(page); i += 32 {
			page[i] = byte(pfn%251 + 1)
		}
		if err := src.Write(pfn, page); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, err := pagestore.EncodeAll(src)
	if err != nil {
		t.Fatal(err)
	}

	servers := make([]*memserver.Server, 3)
	addrs := make([]string, 3)
	injs := make([]*faultinject.Injector, 3)
	for i := range servers {
		injs[i] = faultinject.New(uint64(31+i), faultinject.Config{ReadErr: 0.02, WriteErr: 0.02, PartialWrite: 0.02})
		injs[i].SetEnabled(false)
		servers[i] = memserver.NewServer(secret, nil)
		servers[i].SetConnWrapper(injs[i].WrapConn)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := servers[i]
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr.String()
	}

	// A breaker tight enough to actually open on the dead backend (so
	// reads learn to skip it) but a retry budget that rides out the
	// injected noise on the healthy ones.
	res := memserver.ResilientConfig{
		MaxRetries:       8,
		MutatingRetries:  8,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
		DialTimeout:      2 * time.Second,
		OpTimeout:        5 * time.Second,
		JitterSeed:       11,
	}

	// Seed the fabric on a calm sea, with the same default placement
	// geometry the memtap below will use.
	up, err := shard.Dial(addrs, secret, shard.Config{
		Replicas: 2,
		Pool:     memserver.PoolConfig{Size: 2, Resilience: res},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := up.PutImage(vmid, alloc, snap); err != nil {
		t.Fatal(err)
	}
	up.Close()

	mt, err := memtap.NewWithOptions(vmid, "", secret, memtap.Options{
		Resilience: &res,
		PoolSize:   2,
		Backends:   addrs,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(vmid, "shard-storm", alloc, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range injs {
		inj.SetEnabled(true)
	}

	pageable := desc.Alloc.Pages() - desc.PageTablePages
	var kill sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < touches; i++ {
				if w == 0 && i == touches/2 {
					// Mid-storm, an entire backend dies.
					kill.Do(func() { servers[1].Close() })
				}
				pfn := pagestore.PFN(desc.PageTablePages + int64(w*173+i*29)%pageable)
				var err error
				for tries := 0; tries < 60; tries++ {
					if _, err = pvm.Touch(pfn); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					t.Errorf("worker %d: touch wedged after backend kill: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	kill.Do(func() { servers[1].Close() }) // ensure it happened even if worker 0 bailed
	if t.Failed() {
		return
	}

	// Every touched page carries correct bytes through chaos + outage.
	for w := 0; w < workers; w++ {
		for i := 0; i < touches; i++ {
			pfn := pagestore.PFN(desc.PageTablePages + int64(w*173+i*29)%pageable)
			want, _ := src.Read(pfn)
			got, err := pvm.Read(pfn)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("pfn %d corrupted through the degraded fabric", pfn)
			}
		}
	}
	// The fabric survived: one dead backend out of three must not flip
	// the memtap's degraded flag, because the aggregate breaker only
	// opens when every backend is gone.
	if mt.Degraded() {
		t.Fatal("memtap went degraded although two replicas of every range survive")
	}
	// And it still serves fresh faults after the storm.
	for _, inj := range injs {
		inj.SetEnabled(false)
	}
	probe := pagestore.PFN(desc.PageTablePages)
	want, _ := src.Read(probe)
	got, err := pvm.Read(probe)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fabric did not settle after the outage: %v", err)
	}
}
