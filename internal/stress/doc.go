// Package stress holds cross-layer race and stress tests for the
// parallel page-transport layer: the memserver connection pool, memtap's
// single-flight fault deduplication, and pipelined prefetch, all driven
// through faultinject chaos (connection resets mid-batch, torn frames,
// slow dials) with dozens of concurrent goroutines.
//
// The package contains no production code — only tests. It exists as its
// own package so the whole transport stack is exercised through public
// APIs exactly as the agent uses them, and so CI can run it under the
// race detector as one named target (see .github/workflows/ci.yml).
//
// The invariants under test:
//
//   - no duplicate installs: every pageable page is installed exactly
//     once, whether by a fault winner or a prefetch stream;
//   - no lost waiters: every goroutine parked on an in-flight fault is
//     woken with the page or the leader's error;
//   - exact accounting: memtap and hypervisor byte/fault counters agree
//     with each other and with the number of pages actually moved.
package stress
