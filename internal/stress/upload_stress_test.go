package stress

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/faultinject"
	"oasis/internal/memserver"
	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// encodeServerImage canonicalises the server's live image for a VM: the
// full-snapshot encoding is deterministic, so equal bytes ⇔ equal images.
func encodeServerImage(t *testing.T, srv *memserver.Server, vmid pagestore.VMID) []byte {
	t.Helper()
	im, err := srv.Store().Get(vmid)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := pagestore.EncodeAll(im)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStreamedUploadUnderChaos drives chunked streaming uploads while the
// fault injector kills connections and tears frames mid-upload. The
// crash-atomicity invariant under test: at every instant the server's
// image for the VM is EITHER the previous version or the new one, never a
// mixture — a failed or half-finished upload leaves the pre-upload
// snapshot serving reads, and a committed one is complete.
func TestStreamedUploadUnderChaos(t *testing.T) {
	const vmid = pagestore.VMID(63)
	const alloc = 8 * units.MiB

	serverInj := faultinject.New(17, faultinject.Config{ReadErr: 0.05, WriteErr: 0.04, PartialWrite: 0.04})
	srv := memserver.NewServer(secret, nil)
	srv.SetConnWrapper(serverInj.WrapConn)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := bound.String()

	// version builds generation g of the guest image: every page carries
	// the generation in its bytes, so a torn image (some pages old, some
	// new) cannot encode to either canonical form.
	version := func(g byte) []byte {
		im := pagestore.NewImage(alloc)
		page := make([]byte, units.PageSize)
		for pfn := pagestore.PFN(0); int64(pfn) < im.NumPages(); pfn++ {
			for i := 0; i < len(page); i += 16 {
				page[i] = g
				page[i+1] = byte(pfn % 251)
			}
			if err := im.Write(pfn, page); err != nil {
				t.Fatal(err)
			}
		}
		snap, _, err := pagestore.EncodeAll(im)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	// Install generation 0 on a calm sea as the pre-upload snapshot.
	serverInj.SetEnabled(false)
	if err := srv.InstallImage(vmid, alloc, version(0)); err != nil {
		t.Fatal(err)
	}
	canon := make(map[int][]byte)
	canon[0] = encodeServerImage(t, srv, vmid)

	p, err := memserver.DialPool(addr, secret, memserver.PoolConfig{
		Size:       4,
		Resilience: stormResilience(addr, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	clean := func() *memserver.Client {
		c, err := memserver.Dial(addr, secret, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	serverInj.SetEnabled(true)
	opts := memserver.PutOptions{Streams: 4, ChunkBytes: 32 * int(units.PageSize)}
	committed := 0
	for g := 1; g <= 6; g++ {
		snap := version(byte(g))
		wantNew := func() []byte {
			im := pagestore.NewImage(alloc)
			if err := pagestore.ApplySnapshot(im, snap); err != nil {
				t.Fatal(err)
			}
			data, _, err := pagestore.EncodeAll(im)
			if err != nil {
				t.Fatal(err)
			}
			return data
		}()
		canon[g] = wantNew

		err := p.StreamImage(vmid, alloc, snap, opts)
		got := encodeServerImage(t, srv, vmid)
		if err != nil {
			// Failed upload: the server must still hold, untorn, the last
			// committed generation. (A lost commit REPLY can leave the new
			// image committed even though the client saw an error — both
			// canonical forms are acceptable; a mixture never is.)
			switch {
			case bytes.Equal(got, canon[committed]):
			case bytes.Equal(got, wantNew):
				committed = g
			default:
				t.Fatalf("gen %d failed upload tore the image", g)
			}
			continue
		}
		if !bytes.Equal(got, wantNew) {
			t.Fatalf("gen %d committed upload is not the new image", g)
		}
		committed = g
	}

	// Storm over: reads through a clean client serve the last committed
	// generation, byte-exact.
	serverInj.SetEnabled(false)
	c := clean()
	defer c.Close()
	im := pagestore.NewImage(alloc)
	if err := pagestore.ApplySnapshot(im, version(byte(committed))); err != nil {
		t.Fatal(err)
	}
	for _, pfn := range []pagestore.PFN{0, 100, 500} {
		want, _ := im.Read(pfn)
		got, err := c.GetPage(vmid, pfn)
		if err != nil {
			t.Fatalf("read after storm: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d: post-storm read does not match committed generation %d", pfn, committed)
		}
	}

	// A mid-upload abandonment (no commit at all) must leave the image
	// byte-identical: begin a new generation, ship half the chunks over a
	// clean connection, then walk away.
	before := encodeServerImage(t, srv, vmid)
	snap := version(9)
	chunks, err := pagestore.SplitSnapshot(snap, opts.ChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutBegin(vmid, 424242, 0 /* image */, alloc); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < len(chunks)/2; seq++ {
		if err := c.PutChunk(vmid, 424242, uint32(seq), chunks[seq]); err != nil {
			t.Fatal(err)
		}
	}
	if got := encodeServerImage(t, srv, vmid); !bytes.Equal(got, before) {
		t.Fatal("abandoned upload perturbed the live image")
	}
}
