package stress

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"oasis/internal/faultinject"
	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/memtap"
	"oasis/internal/pagestore"
	"oasis/internal/units"
)

var secret = []byte("stress-secret")

// chaosBackend stands up a memory server whose accepted connections drop
// reads/writes and tear frames mid-batch, holding a seeded image for one
// VM. Returns the dial address and the source image.
func chaosBackend(t *testing.T, vmid pagestore.VMID, alloc units.Bytes, inj *faultinject.Injector) (string, *pagestore.Image) {
	t.Helper()
	im := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < im.NumPages(); pfn++ {
		page := make([]byte, units.PageSize)
		for i := 0; i < len(page); i += 32 {
			page[i] = byte(pfn%251 + 1)
		}
		if err := im.Write(pfn, page); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, err := pagestore.EncodeAll(im)
	if err != nil {
		t.Fatal(err)
	}
	srv := memserver.NewServer(secret, nil)
	if inj != nil {
		srv.SetConnWrapper(inj.WrapConn)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.InstallImage(vmid, alloc, snap); err != nil {
		t.Fatal(err)
	}
	return addr.String(), im
}

// stormResilience is a retry budget big enough to ride out the injected
// storms without the breaker masking retry bugs, with fast backoff so
// the test stays quick.
func stormResilience(addr string, dialInj *faultinject.Injector) memserver.ResilientConfig {
	cfg := memserver.ResilientConfig{
		MaxRetries:       12,
		MutatingRetries:  6,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		BreakerThreshold: 1 << 30,
		BreakerCooldown:  20 * time.Millisecond,
		DialTimeout:      2 * time.Second,
		OpTimeout:        5 * time.Second,
		JitterSeed:       7,
	}
	if dialInj != nil {
		cfg.Dialer = func() (*memserver.Client, error) {
			conn, err := dialInj.Dial(func() (net.Conn, error) {
				// A slow dial: reconnect storms must not convoy the pool.
				time.Sleep(2 * time.Millisecond)
				return net.DialTimeout("tcp", addr, 2*time.Second)
			})
			if err != nil {
				return nil, err
			}
			return memserver.NewClientConn(conn, secret)
		}
	}
	return cfg
}

// TestClientPoolChaosStorm hammers one ClientPool from 64 goroutines
// while the server resets connections mid-batch and dials fail or crawl:
// every successful read must return correct bytes, nothing may wedge,
// and the pool must come back clean once the storm passes.
func TestClientPoolChaosStorm(t *testing.T) {
	const vmid = pagestore.VMID(61)
	serverInj := faultinject.New(3, faultinject.Config{ReadErr: 0.04, WriteErr: 0.03, PartialWrite: 0.03})
	addr, src := chaosBackend(t, vmid, 8*units.MiB, serverInj)
	dialInj := faultinject.New(5, faultinject.Config{DialFail: 0.2, ReadErr: 0.04, WriteErr: 0.03})

	// Set up on a calm sea (the eager first-lane dial must see a clean
	// handshake), then arm the storm.
	serverInj.SetEnabled(false)
	dialInj.SetEnabled(false)
	p, err := memserver.DialPool(addr, secret, memserver.PoolConfig{
		Size:       4,
		Resilience: stormResilience(addr, dialInj),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	serverInj.SetEnabled(true)
	dialInj.SetEnabled(true)

	const workers = 64
	pages := src.NumPages()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				pfn := pagestore.PFN(int64(w*12+i) % pages)
				want, _ := src.Read(pfn)
				var got []byte
				var err error
				// An op may exhaust its retry budget under the storm;
				// bounded re-issue is the agent's behaviour. What must
				// never happen is a wrong page or a wedged pool.
				for tries := 0; tries < 30; tries++ {
					if i%3 == 0 {
						var ps map[pagestore.PFN][]byte
						ps, err = p.GetPages(vmid, []pagestore.PFN{pfn, pfn + 1, pfn + 2})
						if err == nil {
							got = ps[pfn]
						}
					} else {
						got, err = p.GetPage(vmid, pfn)
					}
					if err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					t.Errorf("worker %d: wedged under storm: %v", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("worker %d: pfn %d wrong bytes through chaos", w, pfn)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Storm over: a clean pool must serve immediately.
	serverInj.SetEnabled(false)
	dialInj.SetEnabled(false)
	want, _ := src.Read(7)
	var got []byte
	for tries := 0; tries < 10; tries++ {
		if got, err = p.GetPage(vmid, 7); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("pool did not recover after the storm: %v", err)
	}
}

// TestSingleFlightUnderChaos drives 64 goroutines through pvm.Touch with
// heavy same-PFN collisions while the transport storms underneath:
// single-flight plus the hypervisor's install race must keep the
// counters exact — memtap and hypervisor agree, bytes equal faults, no
// waiter is lost, and no page is fetched into the VM twice.
func TestSingleFlightUnderChaos(t *testing.T) {
	const vmid = pagestore.VMID(62)
	serverInj := faultinject.New(9, faultinject.Config{ReadErr: 0.03, WriteErr: 0.02, PartialWrite: 0.02})
	addr, src := chaosBackend(t, vmid, 4*units.MiB, serverInj)

	dialInj := faultinject.New(13, faultinject.Config{DialFail: 0.1})
	res := stormResilience(addr, dialInj)
	serverInj.SetEnabled(false)
	dialInj.SetEnabled(false)
	mt, err := memtap.NewWithOptions(vmid, addr, secret, memtap.Options{
		Resilience: &res,
		PoolSize:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	serverInj.SetEnabled(true)
	dialInj.SetEnabled(true)
	desc := hypervisor.NewDescriptor(vmid, "storm", 4*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}

	// 64 workers share a 96-page window: ~2/3 of all touches collide
	// with another worker's in-flight fault.
	const workers, window = 64, 96
	base := pagestore.PFN(desc.PageTablePages)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				pfn := base + pagestore.PFN((w*24+i*7)%window)
				var err error
				for tries := 0; tries < 30; tries++ {
					if _, err = pvm.Touch(pfn); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					t.Errorf("worker %d: touch wedged: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every page in the window is present with correct contents.
	for off := int64(0); off < window; off++ {
		pfn := base + pagestore.PFN(off)
		want, _ := src.Read(pfn)
		got, err := pvm.Read(pfn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d corrupted under storm", pfn)
		}
	}
	// Exact accounting, cross-checked between the two layers. Without
	// prefetch in play every successful leader fetch is installed by
	// exactly one touch winner, so the counters must agree exactly.
	if mt.Faults() != pvm.Faults() {
		t.Errorf("memtap served %d faults, hypervisor counted %d", mt.Faults(), pvm.Faults())
	}
	if mt.FetchedBytes() != pvm.FetchedBytes() {
		t.Errorf("memtap fetched %v, hypervisor installed %v", mt.FetchedBytes(), pvm.FetchedBytes())
	}
	if want := units.Bytes(mt.Faults()) * units.PageSize; mt.FetchedBytes() != want {
		t.Errorf("FetchedBytes %v != faults x page size %v (duplicate fetch?)", mt.FetchedBytes(), want)
	}
	if pvm.PresentPages() != window+desc.PageTablePages {
		t.Errorf("present pages %d, want exactly the touched window (duplicate or lost install)",
			pvm.PresentPages())
	}
	if mt.DedupedFaults() == 0 {
		t.Error("no fault collisions coalesced; the stress pattern lost its teeth")
	}
}

// TestPrefetchRacesFaultsUnderChaos overlaps a pipelined partial→full
// conversion with 16 concurrent faulters while the transport storms:
// the VM must end up complete with every page installed exactly once
// and the byte accounting internally consistent.
func TestPrefetchRacesFaultsUnderChaos(t *testing.T) {
	const vmid = pagestore.VMID(63)
	serverInj := faultinject.New(21, faultinject.Config{ReadErr: 0.01, WriteErr: 0.01})
	addr, src := chaosBackend(t, vmid, 4*units.MiB, serverInj)

	res := stormResilience(addr, nil)
	serverInj.SetEnabled(false)
	mt, err := memtap.NewWithOptions(vmid, addr, secret, memtap.Options{
		Resilience:      &res,
		PoolSize:        4,
		PrefetchStreams: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	serverInj.SetEnabled(true)
	desc := hypervisor.NewDescriptor(vmid, "convert", 4*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	total := desc.Alloc.Pages()
	pageable := total - desc.PageTablePages

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				pfn := pagestore.PFN(desc.PageTablePages + int64(w*97+i*13)%pageable)
				var err error
				for tries := 0; tries < 30; tries++ {
					if _, err = pvm.Touch(pfn); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					t.Errorf("faulter %d wedged: %v", w, err)
					return
				}
			}
		}(w)
	}
	var installed int
	var prefErr error
	for tries := 0; tries < 30; tries++ {
		var n int
		n, prefErr = mt.PrefetchRemaining(pvm, 64)
		installed += n
		if prefErr == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if prefErr != nil {
		t.Fatalf("prefetch wedged under storm: %v", prefErr)
	}
	if t.Failed() {
		return
	}

	if pvm.PresentPages() != total {
		t.Fatalf("present %d of %d after conversion", pvm.PresentPages(), total)
	}
	// Exactly-once installs: fault winners plus prefetch installs cover
	// the pageable range with no overlap.
	if got := pvm.Faults() + int64(installed); got != pageable {
		t.Errorf("fault installs %d + prefetch installs %d = %d, want %d (duplicate or lost install)",
			pvm.Faults(), installed, got, pageable)
	}
	// Memtap's own ledger: every byte it counted is a fault fetch or an
	// actually-installed prefetched page.
	if want := units.Bytes(mt.Faults()+int64(installed)) * units.PageSize; mt.FetchedBytes() != want {
		t.Errorf("FetchedBytes %v, ledger says %v", mt.FetchedBytes(), want)
	}
	// A fault whose install lost to a prefetch stream still fetched
	// remotely, so memtap may count more faults than the hypervisor —
	// never fewer.
	if mt.Faults() < pvm.Faults() {
		t.Errorf("memtap faults %d < hypervisor faults %d", mt.Faults(), pvm.Faults())
	}
	for pfn := pagestore.PFN(desc.PageTablePages); int64(pfn) < total; pfn++ {
		want, _ := src.Read(pfn)
		got, err := pvm.Read(pfn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d corrupted in converted VM", pfn)
		}
	}
}
