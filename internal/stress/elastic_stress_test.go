package stress

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"oasis/internal/faultinject"
	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/memserver/shard"
	"oasis/internal/memtap"
	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestElasticFabricChaosStorm is the elastic-fabric kill-and-rejoin
// gate: a partial VM faults pages from a 3-backend, 2-replica fabric
// while connections storm (dropped reads/writes, torn frames), and the
// membership churns underneath it — a fourth backend joins mid-storm
// (triggering a throttled rebalance), one original backend crashes,
// writes keep landing (buffered as hints for the dead replica), the
// crashed backend rejoins empty on the same address and is repaired,
// and finally a backend is drained out and powered off. The gate:
// zero failed reads throughout, byte-identical readback of every page
// afterwards (including the newest hinted writes, verified directly on
// the rejoined replica), and oasis_shard_underreplicated_ranges back
// to 0 once re-replication settles.
func TestElasticFabricChaosStorm(t *testing.T) {
	const (
		vmid    = pagestore.VMID(77)
		workers = 32
		touches = 24
	)
	alloc := 16 * units.MiB // 4096 pages = 32 placement ranges at RangePages=128

	src := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < src.NumPages(); pfn++ {
		page := make([]byte, units.PageSize)
		for i := 0; i < len(page); i += 32 {
			page[i] = byte(pfn%251 + 1)
		}
		if err := src.Write(pfn, page); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, err := pagestore.EncodeAll(src)
	if err != nil {
		t.Fatal(err)
	}

	// Four backends: three founding members plus one that joins
	// mid-storm. All of them storm once the image is seeded.
	servers := make([]*memserver.Server, 4)
	addrs := make([]string, 4)
	injs := make([]*faultinject.Injector, 4)
	for i := range servers {
		injs[i] = faultinject.New(uint64(41+i), faultinject.Config{ReadErr: 0.01, WriteErr: 0.01, PartialWrite: 0.01})
		injs[i].SetEnabled(false)
		servers[i] = memserver.NewServer(secret, nil)
		servers[i].SetConnWrapper(injs[i].WrapConn)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr.String()
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			srv.Close()
		}
	})

	res := memserver.ResilientConfig{
		MaxRetries:       8,
		MutatingRetries:  8,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
		DialTimeout:      2 * time.Second,
		OpTimeout:        5 * time.Second,
		JitterSeed:       7,
	}

	// One tracked fabric client carries the whole life of the VM —
	// upload, faults, dirty writes — so rebalance and repair know which
	// images they are responsible for. Fine-grained ranges and a
	// throttled rebalance keep the migration window open under the
	// storm instead of finishing before the chaos starts.
	fab, err := shard.Dial(addrs[:3], secret, shard.Config{
		Replicas:             2,
		RangePages:           128,
		RebalanceBytesPerSec: 16 << 20,
		RebalanceBatchPages:  32,
		ProbeInterval:        20 * time.Millisecond,
		Pool:                 memserver.PoolConfig{Size: 2, Resilience: res},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.PutImage(vmid, alloc, snap); err != nil {
		t.Fatal(err)
	}

	mt := memtap.NewWithClient(vmid, fab)
	defer mt.Close() // closes the fabric
	desc := hypervisor.NewDescriptor(vmid, "elastic-storm", alloc, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range injs {
		inj.SetEnabled(true)
	}

	// Readers stay below writerBase; the writer owns the last 256 pages
	// (two placement ranges) so the two verify against disjoint
	// expectations.
	const writerPages = 256
	writerBase := src.NumPages() - writerPages
	ptPages := desc.PageTablePages
	readable := writerBase - ptPages

	var join, kill, rejoin sync.Once
	doJoin := func() {
		if err := fab.AddBackend(addrs[3]); err != nil {
			t.Errorf("add backend mid-storm: %v", err)
		}
	}
	doKill := func() { servers[1].Close() }
	doRejoin := func() {
		// The crashed backend comes back EMPTY on the same address (a
		// process restart loses the in-memory store); the fabric must
		// detect the amnesia and rebuild it from the survivors.
		srv := memserver.NewServer(secret, nil)
		srv.SetConnWrapper(injs[1].WrapConn)
		if _, err := srv.Listen(addrs[1]); err != nil {
			t.Errorf("rejoin backend: %v", err)
			return
		}
		servers[1] = srv
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < touches; i++ {
				if w == 0 {
					switch i {
					case touches / 4:
						join.Do(doJoin)
					case touches / 2:
						kill.Do(doKill)
					case 3 * touches / 4:
						rejoin.Do(doRejoin)
					}
				}
				pfn := pagestore.PFN(ptPages + int64(w*173+i*29)%readable)
				var err error
				for tries := 0; tries < 100; tries++ {
					if _, err = pvm.Touch(pfn); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					t.Errorf("worker %d: read failed through membership churn: %v", w, err)
					return
				}
			}
		}(w)
	}

	// A writer keeps dirtying the tail region through the crash window:
	// those diffs must land on the live replicas immediately and reach
	// the dead one via hinted handoff once it rejoins.
	const writerRounds = 6
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 1; r <= writerRounds; r++ {
			dirty := pagestore.NewImage(alloc)
			page := bytes.Repeat([]byte{byte(r)}, int(units.PageSize))
			for k := int64(0); k < writerPages; k++ {
				if err := dirty.Write(pagestore.PFN(writerBase+k), page); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
			diff, _, err := pagestore.EncodeAll(dirty)
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if err := fab.PutDiff(vmid, diff); err != nil {
				t.Errorf("writer round %d failed (should have been hinted): %v", r, err)
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()
	wg.Wait()
	join.Do(doJoin)
	kill.Do(doKill)
	rejoin.Do(doRejoin)
	for _, inj := range injs {
		inj.SetEnabled(false)
	}
	if t.Failed() {
		return
	}

	// The add-backend rebalance settles and the crashed-then-rejoined
	// backend is repaired: every range back at full replication.
	if err := fab.WaitRebalance(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 20*time.Second, "re-replication after rejoin", func() bool {
		return fab.UnderreplicatedRanges() == 0
	})
	if got := fab.RingVersion(); got != 2 {
		t.Fatalf("ring version = %d after one membership change, want 2", got)
	}

	// Drain a founding member out and power it off: ownership moves and
	// re-replicates onto the survivors before the backend dies.
	if err := fab.RemoveBackend(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if err := fab.WaitRebalance(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 20*time.Second, "re-replication after drain", func() bool {
		return fab.UnderreplicatedRanges() == 0
	})
	servers[0].Close()

	// Byte-identical readback of the whole guest through the surviving
	// fabric: the reader region against the source image, the writer
	// region against the last round's bytes.
	lastRound := bytes.Repeat([]byte{byte(writerRounds)}, int(units.PageSize))
	for pfn := pagestore.PFN(ptPages); int64(pfn) < src.NumPages(); pfn++ {
		want, _ := src.Read(pfn)
		if int64(pfn) >= writerBase {
			want = lastRound
		}
		got, err := fab.GetPage(vmid, pfn)
		if err != nil {
			t.Fatalf("pfn %d unreadable after the storm: %v", pfn, err)
		}
		if len(got) == 0 {
			got = make([]byte, units.PageSize)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d corrupted through membership churn", pfn)
		}
	}

	// Every replica of the writer region holds the newest bytes —
	// including the backend that was dead when the writes were issued
	// (hint replay / repair) and the one that joined mid-storm
	// (rebalance copy). Direct-dial each owner, bypassing fabric
	// failover, so a stale copy cannot hide behind a fresh one.
	direct := make(map[string]*memserver.Client)
	ring := fab.Ring()
	checked := 0
	for k := int64(0); k < writerPages; k++ {
		pfn := pagestore.PFN(writerBase + k)
		for _, a := range ring.OwnerAddrs(vmid, pfn) {
			d, ok := direct[a]
			if !ok {
				d, err = memserver.Dial(a, secret, 2*time.Second)
				if err != nil {
					t.Fatalf("direct dial owner %s: %v", a, err)
				}
				defer d.Close()
				direct[a] = d
			}
			got, err := d.GetPage(vmid, pfn)
			if err != nil {
				t.Fatalf("owner %s cannot serve pfn %d: %v", a, pfn, err)
			}
			if !bytes.Equal(got, lastRound) {
				t.Fatalf("owner %s holds stale bytes at pfn %d: replication lost a write", a, pfn)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("writer-region replica check verified nothing")
	}
	// The VM never looked degraded (replicas kept serving) and is no
	// longer under-replicated.
	if mt.Degraded() {
		t.Fatal("memtap went degraded although replicas served throughout")
	}
	if mt.Underreplicated() {
		t.Fatal("memtap still reports under-replication after repair settled")
	}
	st := fab.FabricStatus()
	if st.RingVersion != 3 || st.Rebalancing || st.PendingRanges != 0 {
		t.Fatalf("fabric did not settle: %+v", st)
	}
	for _, b := range st.Backends {
		if b.HintQueue != 0 || b.NeedsRepair {
			t.Fatalf("backend %s still owes recovery after the storm: %+v", b.Addr, b)
		}
	}
	t.Logf("elastic storm: %d reads, %d writer-page replicas verified byte-identical", workers*touches, checked)
}
