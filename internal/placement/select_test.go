package placement

import (
	"sort"
	"testing"
	"testing/quick"

	"oasis/internal/rng"
	"oasis/internal/units"
)

// The allocation-free strategies must make bit-identical decisions to
// the sorting implementations they replaced: same candidate set, same
// RNG stream → same pick, and the same number of RNG draws (a skipped
// or extra draw would silently shift every later planner decision).
// The reference implementations below are the pre-rewrite code,
// preserved verbatim as test oracles.

func refSortByFree(cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Free != out[j].Free {
			return out[i].Free < out[j].Free
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func refRandom(cands []Candidate, r *rng.Rand) int {
	out := append([]Candidate(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out[r.Intn(len(out))].ID
}

func refFirstFit(cands []Candidate) int {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.ID < best.ID {
			best = c
		}
	}
	return best.ID
}

func refBestFit(cands []Candidate) int { return refSortByFree(cands)[0].ID }

func refWorstFit(cands []Candidate) int {
	s := refSortByFree(cands)
	return s[len(s)-1].ID
}

func refRandomBestK(K int, cands []Candidate, r *rng.Rand) int {
	k := K
	if k <= 0 {
		k = 2
	}
	sorted := refSortByFree(cands)
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[r.Intn(k)].ID
}

// genCands builds a candidate set with distinct IDs and adversarially
// clustered Free values (many exact ties, which is where a broken
// tie-break shows up).
func genCands(r *rng.Rand, n int) []Candidate {
	out := make([]Candidate, n)
	perm := r.Perm(n * 4)
	for i := range out {
		out[i] = Candidate{
			ID:   perm[i],
			Free: units.Bytes(r.Intn(5)) * units.GiB, // dense ties
		}
		if r.Bool(0.3) {
			out[i].Free += units.Bytes(r.Intn(1 << 20))
		}
	}
	return out
}

// TestStrategiesMatchSortingReference drives every strategy and its
// oracle with independent-but-identical RNGs over random candidate
// sets, checking both the decision and the post-pick RNG position
// (probed with one extra draw).
func TestStrategiesMatchSortingReference(t *testing.T) {
	gen := rng.New(99)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + gen.Intn(40)
		cs := genCands(gen, n)
		seed := gen.Uint64()
		type pair struct {
			name string
			got  func(c []Candidate, r *rng.Rand) int
			want func(c []Candidate, r *rng.Rand) int
		}
		k := 1 + int(seed%5)
		pairs := []pair{
			{"random", Random{}.Pick, refRandom},
			{"first-fit", FirstFit{}.Pick, func(c []Candidate, _ *rng.Rand) int { return refFirstFit(c) }},
			{"best-fit", BestFit{}.Pick, func(c []Candidate, _ *rng.Rand) int { return refBestFit(c) }},
			{"worst-fit", WorstFit{}.Pick, func(c []Candidate, _ *rng.Rand) int { return refWorstFit(c) }},
			{"random-best-k", RandomBestK{K: k}.Pick, func(c []Candidate, r *rng.Rand) int { return refRandomBestK(k, c, r) }},
			{"random-best-default", RandomBestK{}.Pick, func(c []Candidate, r *rng.Rand) int { return refRandomBestK(0, c, r) }},
		}
		for _, p := range pairs {
			rGot, rWant := rng.New(seed), rng.New(seed)
			// The new Pick may reorder in place; the oracle gets its own
			// copy so both see the same set.
			got := p.got(append([]Candidate(nil), cs...), rGot)
			want := p.want(append([]Candidate(nil), cs...), rWant)
			if got != want {
				t.Fatalf("trial %d: %s picked %d, sorting reference picked %d (cands %v)",
					trial, p.name, got, want, cs)
			}
			if a, b := rGot.Uint64(), rWant.Uint64(); a != b {
				t.Fatalf("trial %d: %s left the RNG at a different position (%#x vs %#x)",
					trial, p.name, a, b)
			}
		}
	}
}

// TestStrategiesOrderIndependent: shuffling the candidate slice must not
// change any strategy's decision — the incremental planner collects
// candidates in capacity-bucket order, not host order.
func TestStrategiesOrderIndependent(t *testing.T) {
	gen := rng.New(41)
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%30
		cs := genCands(gen, n)
		shuffled := append([]Candidate(nil), cs...)
		gen.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		for _, s := range []Strategy{Random{}, FirstFit{}, BestFit{}, WorstFit{}, RandomBestK{K: 3}} {
			a := s.Pick(append([]Candidate(nil), cs...), rng.New(seed))
			b := s.Pick(append([]Candidate(nil), shuffled...), rng.New(seed))
			if a != b {
				t.Logf("%s: order changed pick %d -> %d", s.Name(), a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPickZeroAlloc is the perf gate: no strategy may allocate on the
// hot path, at small or planner-scale candidate counts.
func TestPickZeroAlloc(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1, 2, 17, 1024} {
		cs := genCands(r, n)
		for _, s := range []Strategy{Random{}, FirstFit{}, BestFit{}, WorstFit{}, RandomBestK{K: 2}} {
			s := s
			allocs := testing.AllocsPerRun(100, func() {
				s.Pick(cs, r)
			})
			if allocs != 0 {
				t.Errorf("%s allocates %.1f times per Pick at n=%d", s.Name(), allocs, n)
			}
		}
	}
}

// TestSelectKthAgainstSort pins the quickselect itself: for every rank
// of random slices it must return exactly the k-th element of the
// sorted order.
func TestSelectKthAgainstSort(t *testing.T) {
	gen := rng.New(13)
	for trial := 0; trial < 500; trial++ {
		n := 1 + gen.Intn(25)
		cs := genCands(gen, n)
		sorted := refSortByFree(cs)
		for k := 0; k < n; k++ {
			got := selectKth(append([]Candidate(nil), cs...), k, lessFree)
			if got != sorted[k] {
				t.Fatalf("selectKth(%d) = %+v, want %+v", k, got, sorted[k])
			}
		}
		byID := append([]Candidate(nil), cs...)
		sort.Slice(byID, func(i, j int) bool { return byID[i].ID < byID[j].ID })
		for k := 0; k < n; k++ {
			got := selectKth(append([]Candidate(nil), cs...), k, lessID)
			if got.ID != byID[k].ID {
				t.Fatalf("selectKth(%d, byID) = %+v, want %+v", k, got, byID[k])
			}
		}
	}
}
