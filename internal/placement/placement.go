// Package placement provides destination-selection strategies for the
// consolidation planner. The paper uses random selection among
// consolidation hosts with capacity (§3.1) and explicitly leaves
// "more sophisticated placement algorithms" out of scope; this package
// implements the classic bin-packing family so the choice can be studied
// as an ablation (see BenchmarkAblationPlacement).
package placement

import (
	"sort"

	"oasis/internal/rng"
	"oasis/internal/units"
)

// Candidate is one host the planner may target.
type Candidate struct {
	// ID identifies the host.
	ID int
	// Free is the host's remaining capacity after tentative assignments
	// and headroom reservations.
	Free units.Bytes
}

// Strategy picks a destination among candidates that all fit the
// request. Implementations must be deterministic given the same
// candidates and random stream.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Pick returns the chosen candidate ID. Candidates is non-empty and
	// every entry already fits the request; Pick must not assume any
	// ordering.
	Pick(cands []Candidate, r *rng.Rand) int
}

func sortByFree(cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Free != out[j].Free {
			return out[i].Free < out[j].Free
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Random picks uniformly among fitting hosts — the paper's §3.1
// behaviour.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Pick implements Strategy.
func (Random) Pick(cands []Candidate, r *rng.Rand) int {
	out := append([]Candidate(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out[r.Intn(len(out))].ID
}

// FirstFit picks the lowest-numbered fitting host.
type FirstFit struct{}

// Name implements Strategy.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements Strategy.
func (FirstFit) Pick(cands []Candidate, _ *rng.Rand) int {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.ID < best.ID {
			best = c
		}
	}
	return best.ID
}

// BestFit picks the fitting host with the least remaining space,
// packing hosts tight so others can drain and sleep.
type BestFit struct{}

// Name implements Strategy.
func (BestFit) Name() string { return "best-fit" }

// Pick implements Strategy.
func (BestFit) Pick(cands []Candidate, _ *rng.Rand) int {
	return sortByFree(cands)[0].ID
}

// WorstFit picks the fitting host with the most remaining space,
// spreading load and preserving headroom everywhere.
type WorstFit struct{}

// Name implements Strategy.
func (WorstFit) Name() string { return "worst-fit" }

// Pick implements Strategy.
func (WorstFit) Pick(cands []Candidate, _ *rng.Rand) int {
	s := sortByFree(cands)
	return s[len(s)-1].ID
}

// RandomBestK picks at random among the K tightest fitting hosts —
// best-fit packing with enough randomness to avoid hot-spotting one host
// during storms. K=2 is the cluster manager's default.
type RandomBestK struct{ K int }

// Name implements Strategy.
func (s RandomBestK) Name() string { return "random-best-k" }

// Pick implements Strategy.
func (s RandomBestK) Pick(cands []Candidate, r *rng.Rand) int {
	k := s.K
	if k <= 0 {
		k = 2
	}
	sorted := sortByFree(cands)
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[r.Intn(k)].ID
}
