// Package placement provides destination-selection strategies for the
// consolidation planner. The paper uses random selection among
// consolidation hosts with capacity (§3.1) and explicitly leaves
// "more sophisticated placement algorithms" out of scope; this package
// implements the classic bin-packing family so the choice can be studied
// as an ablation (see BenchmarkAblationPlacement).
//
// Every strategy is allocation-free: the fleet-scale planner calls Pick
// once per VM placement, and the original implementations copied and
// sorted the candidate slice on each call — at 10k hosts that sort
// dominated whole-plan profiles. The rewrites use single-pass selection
// (min/max) or an in-place quickselect for rank queries, and are proven
// decision-identical to the sorting versions by property tests.
package placement

import (
	"oasis/internal/rng"
	"oasis/internal/units"
)

// Candidate is one host the planner may target.
type Candidate struct {
	// ID identifies the host.
	ID int
	// Free is the host's remaining capacity after tentative assignments
	// and headroom reservations.
	Free units.Bytes
}

// Strategy picks a destination among candidates that all fit the
// request. Implementations must be deterministic given the same
// candidates and random stream, and order-independent: the same
// candidate set in any order yields the same choice (the incremental
// planner's capacity index collects candidates in bucket order, not
// host order). Pick may reorder cands in place; callers must not rely
// on the slice's order afterwards.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Pick returns the chosen candidate ID. Candidates is non-empty and
	// every entry already fits the request; Pick must not assume any
	// ordering.
	Pick(cands []Candidate, r *rng.Rand) int
}

// lessFree orders candidates by (Free, ID) ascending — the total order
// the sorting implementations used, so ties on Free stay deterministic.
func lessFree(a, b Candidate) bool {
	if a.Free != b.Free {
		return a.Free < b.Free
	}
	return a.ID < b.ID
}

// lessID orders candidates by ID (IDs are distinct per call).
func lessID(a, b Candidate) bool { return a.ID < b.ID }

// selectKth partially sorts cands in place so that cands[k] holds the
// k-th smallest element under less, and returns it. Iterative Hoare
// quickselect with median-of-three pivoting: O(n) expected, zero
// allocations, and fully deterministic (no randomized pivots). The
// k-th order statistic is a property of the candidate *set*, so the
// result is independent of the slice's initial order.
func selectKth(cands []Candidate, k int, less func(a, b Candidate) bool) Candidate {
	lo, hi := 0, len(cands)-1
	for lo < hi {
		// Median-of-three: order cands[lo], cands[mid], cands[hi] and
		// use the median as the pivot value.
		mid := lo + (hi-lo)/2
		if less(cands[mid], cands[lo]) {
			cands[mid], cands[lo] = cands[lo], cands[mid]
		}
		if less(cands[hi], cands[lo]) {
			cands[hi], cands[lo] = cands[lo], cands[hi]
		}
		if less(cands[hi], cands[mid]) {
			cands[hi], cands[mid] = cands[mid], cands[hi]
		}
		pivot := cands[mid]
		// Hoare partition around the pivot value.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if !less(cands[i], pivot) {
					break
				}
			}
			for {
				j--
				if !less(pivot, cands[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			cands[i], cands[j] = cands[j], cands[i]
		}
		// Elements <= pivot live in [lo, j], >= pivot in (j, hi].
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return cands[k]
}

// Random picks uniformly among fitting hosts — the paper's §3.1
// behaviour. The draw indexes the candidates in ID order (the sorting
// version's contract), reproduced with a rank selection.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Pick implements Strategy.
func (Random) Pick(cands []Candidate, r *rng.Rand) int {
	return selectKth(cands, r.Intn(len(cands)), lessID).ID
}

// FirstFit picks the lowest-numbered fitting host.
type FirstFit struct{}

// Name implements Strategy.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements Strategy.
func (FirstFit) Pick(cands []Candidate, _ *rng.Rand) int {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.ID < best.ID {
			best = c
		}
	}
	return best.ID
}

// BestFit picks the fitting host with the least remaining space,
// packing hosts tight so others can drain and sleep.
type BestFit struct{}

// Name implements Strategy.
func (BestFit) Name() string { return "best-fit" }

// Pick implements Strategy.
func (BestFit) Pick(cands []Candidate, _ *rng.Rand) int {
	best := cands[0]
	for _, c := range cands[1:] {
		if lessFree(c, best) {
			best = c
		}
	}
	return best.ID
}

// WorstFit picks the fitting host with the most remaining space,
// spreading load and preserving headroom everywhere.
type WorstFit struct{}

// Name implements Strategy.
func (WorstFit) Name() string { return "worst-fit" }

// Pick implements Strategy.
func (WorstFit) Pick(cands []Candidate, _ *rng.Rand) int {
	best := cands[0]
	for _, c := range cands[1:] {
		if lessFree(best, c) {
			best = c
		}
	}
	return best.ID
}

// RandomBestK picks at random among the K tightest fitting hosts —
// best-fit packing with enough randomness to avoid hot-spotting one host
// during storms. K=2 is the cluster manager's default.
type RandomBestK struct{ K int }

// Name implements Strategy.
func (s RandomBestK) Name() string { return "random-best-k" }

// Pick implements Strategy.
func (s RandomBestK) Pick(cands []Candidate, r *rng.Rand) int {
	k := s.K
	if k <= 0 {
		k = 2
	}
	if k > len(cands) {
		k = len(cands)
	}
	// Draw first, then select: the sorting version consumed exactly one
	// Intn(k) after its (RNG-free) sort, so the stream position — and
	// therefore every later planner decision — is unchanged.
	return selectKth(cands, r.Intn(k), lessFree).ID
}
