package placement

import (
	"testing"
	"testing/quick"

	"oasis/internal/rng"
	"oasis/internal/units"
)

func cands(frees ...int) []Candidate {
	out := make([]Candidate, len(frees))
	for i, f := range frees {
		out[i] = Candidate{ID: i, Free: units.Bytes(f) * units.GiB}
	}
	return out
}

func TestFirstFit(t *testing.T) {
	r := rng.New(1)
	got := (FirstFit{}).Pick([]Candidate{{ID: 5, Free: 10}, {ID: 2, Free: 1}, {ID: 9, Free: 99}}, r)
	if got != 2 {
		t.Errorf("FirstFit picked %d, want 2", got)
	}
}

func TestBestAndWorstFit(t *testing.T) {
	r := rng.New(1)
	c := cands(30, 5, 12)
	if got := (BestFit{}).Pick(c, r); got != 1 {
		t.Errorf("BestFit picked %d, want 1 (5 GiB free)", got)
	}
	if got := (WorstFit{}).Pick(c, r); got != 0 {
		t.Errorf("WorstFit picked %d, want 0 (30 GiB free)", got)
	}
	// Ties break by ID for determinism.
	tie := []Candidate{{ID: 7, Free: 5}, {ID: 3, Free: 5}}
	if got := (BestFit{}).Pick(tie, r); got != 3 {
		t.Errorf("BestFit tie picked %d, want 3", got)
	}
}

func TestRandomCoversAllCandidates(t *testing.T) {
	r := rng.New(2)
	c := cands(1, 2, 3, 4)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[(Random{}).Pick(c, r)] = true
	}
	if len(seen) != 4 {
		t.Errorf("Random only ever picked %v", seen)
	}
}

func TestRandomBestK(t *testing.T) {
	r := rng.New(3)
	c := cands(30, 5, 12, 50)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[(RandomBestK{K: 2}).Pick(c, r)] = true
	}
	// Only the two tightest (IDs 1 and 2) are eligible.
	if len(seen) != 2 || !seen[1] || !seen[2] {
		t.Errorf("RandomBestK picked %v, want {1,2}", seen)
	}
	// K <= 0 defaults to 2; K beyond the candidate count clamps.
	if got := (RandomBestK{}).Pick(cands(7), r); got != 0 {
		t.Errorf("singleton pick = %d", got)
	}
	if got := (RandomBestK{K: 99}).Pick(cands(7, 8), r); got != 0 && got != 1 {
		t.Errorf("clamped pick = %d", got)
	}
}

// TestQuickPickIsAlwaysACandidate: every strategy must return an ID that
// was actually offered, for arbitrary candidate sets.
func TestQuickPickIsAlwaysACandidate(t *testing.T) {
	strategies := []Strategy{Random{}, FirstFit{}, BestFit{}, WorstFit{}, RandomBestK{K: 3}}
	r := rng.New(4)
	f := func(frees []uint32) bool {
		if len(frees) == 0 {
			return true
		}
		cs := make([]Candidate, len(frees))
		ids := map[int]bool{}
		for i, fr := range frees {
			cs[i] = Candidate{ID: i * 3, Free: units.Bytes(fr)}
			ids[i*3] = true
		}
		for _, s := range strategies {
			if !ids[s.Pick(cs, r)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPickPreservesCandidateSet: Pick may reorder cands in place (the
// documented contract), but must never lose or duplicate an entry —
// callers reuse the backing slice for the next pick.
func TestPickPreservesCandidateSet(t *testing.T) {
	r := rng.New(5)
	orig := cands(9, 1, 5, 5, 22, 3)
	for _, s := range []Strategy{Random{}, FirstFit{}, BestFit{}, WorstFit{}, RandomBestK{K: 2}} {
		c := append([]Candidate(nil), orig...)
		s.Pick(c, r)
		count := map[Candidate]int{}
		for _, x := range c {
			count[x]++
		}
		for _, x := range orig {
			count[x]--
		}
		for x, n := range count {
			if n != 0 {
				t.Fatalf("%s changed the candidate multiset (delta %d for %+v)", s.Name(), n, x)
			}
		}
	}
}

func TestNames(t *testing.T) {
	for _, s := range []Strategy{Random{}, FirstFit{}, BestFit{}, WorstFit{}, RandomBestK{}} {
		if s.Name() == "" {
			t.Error("empty strategy name")
		}
	}
}
