package memtap

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// gatedClient blocks GetPage until released, counting remote fetches — the
// instrument for proving single-flight deduplication.
type gatedClient struct {
	src     *pagestore.Image
	gate    chan struct{}
	fetches atomic.Int64
	err     error
}

func (g *gatedClient) GetPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	g.fetches.Add(1)
	if g.gate != nil {
		<-g.gate
	}
	if g.err != nil {
		return nil, g.err
	}
	return g.src.Read(pfn)
}

func (g *gatedClient) GetPages(id pagestore.VMID, pfns []pagestore.PFN) (map[pagestore.PFN][]byte, error) {
	out := make(map[pagestore.PFN][]byte, len(pfns))
	for _, pfn := range pfns {
		p, err := g.src.Read(pfn)
		if err != nil {
			return nil, err
		}
		out[pfn] = p
	}
	return out, nil
}

func (g *gatedClient) Close() error { return nil }

func seededImage(t *testing.T, alloc units.Bytes) *pagestore.Image {
	t.Helper()
	im := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < im.NumPages(); pfn++ {
		if err := im.Write(pfn, bytes.Repeat([]byte{byte(pfn%251 + 1)}, int(units.PageSize))); err != nil {
			t.Fatal(err)
		}
	}
	return im
}

// TestSingleFlightDedup is the headline single-flight proof: K concurrent
// faults on one PFN issue exactly 1 remote fetch, every waiter gets the
// page (none lost), and the accounting counts the page once.
func TestSingleFlightDedup(t *testing.T) {
	const k = 64
	src := seededImage(t, 2*units.MiB)
	gc := &gatedClient{src: src, gate: make(chan struct{})}
	mt := NewWithClient(9, gc)

	pfn := pagestore.PFN(17)
	want, _ := src.Read(pfn)

	var wg sync.WaitGroup
	got := make([][]byte, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = mt.FetchPage(9, pfn)
		}(i)
	}
	// Wait until the leader is inside the remote fetch and every follower
	// has had a chance to pile onto the in-flight entry.
	for gc.fetches.Load() == 0 {
		runtime.Gosched()
	}
	for mt.DedupedFaults() < k-1 {
		runtime.Gosched()
	}
	close(gc.gate)
	wg.Wait()

	if n := gc.fetches.Load(); n != 1 {
		t.Fatalf("%d concurrent faults issued %d remote fetches, want exactly 1", k, n)
	}
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d lost: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("waiter %d got wrong page contents", i)
		}
	}
	if mt.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1 (leader only)", mt.Faults())
	}
	if mt.DedupedFaults() != k-1 {
		t.Fatalf("DedupedFaults = %d, want %d", mt.DedupedFaults(), k-1)
	}
	if mt.FetchedBytes() != units.PageSize {
		t.Fatalf("FetchedBytes = %v, want one page", mt.FetchedBytes())
	}
}

// TestSingleFlightSharesErrors checks waiters share the leader's failure
// instead of hanging or issuing their own doomed fetches.
func TestSingleFlightSharesErrors(t *testing.T) {
	const k = 16
	boom := errors.New("backend detonated")
	gc := &gatedClient{src: seededImage(t, units.MiB), gate: make(chan struct{}), err: boom}
	mt := NewWithClient(3, gc)

	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = mt.FetchPage(3, 5)
		}(i)
	}
	for mt.DedupedFaults() < k-1 {
		runtime.Gosched()
	}
	close(gc.gate)
	wg.Wait()

	if n := gc.fetches.Load(); n != 1 {
		t.Fatalf("failing fetch issued %d remote calls, want 1", n)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: err = %v, want shared leader error", i, err)
		}
	}
	if mt.Faults() != 0 || mt.FetchedBytes() != 0 {
		t.Fatalf("failed fetch was counted: faults=%d bytes=%v", mt.Faults(), mt.FetchedBytes())
	}
}

// TestSingleFlightRefetchesAfterCompletion: the in-flight entry must be
// removed once the leader finishes, so a later fault on the same PFN does
// a fresh remote fetch (the hypervisor only re-faults a page it genuinely
// lacks).
func TestSingleFlightRefetchesAfterCompletion(t *testing.T) {
	src := seededImage(t, units.MiB)
	gc := &gatedClient{src: src} // nil gate: no blocking
	mt := NewWithClient(4, gc)
	if _, err := mt.FetchPage(4, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := mt.FetchPage(4, 8); err != nil {
		t.Fatal(err)
	}
	if n := gc.fetches.Load(); n != 2 {
		t.Fatalf("sequential faults issued %d fetches, want 2 (stale in-flight entry?)", n)
	}
	if mt.DedupedFaults() != 0 {
		t.Fatal("sequential faults were wrongly coalesced")
	}
}

// TestPipelinedPrefetchConvertsToFull runs the pipelined path end to end:
// pooled connections, several streams, a real server — the VM must end up
// full with byte-identical contents and exact accounting, same as serial.
func TestPipelinedPrefetchConvertsToFull(t *testing.T) {
	alloc := 4 * units.MiB
	addr, src := startBackend(t, 88, alloc)

	res := fastCfg()
	mt, err := NewWithOptions(88, addr, secret, Options{
		Resilience:      &res,
		PoolSize:        4,
		PrefetchStreams: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	if got := mt.PrefetchStreams(); got != 4 {
		t.Fatalf("PrefetchStreams = %d", got)
	}

	desc := hypervisor.NewDescriptor(88, "pipelined", alloc, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	installed, err := mt.PrefetchRemaining(pvm, 128)
	if err != nil {
		t.Fatal(err)
	}
	total := desc.Alloc.Pages()
	if pvm.PresentPages() != total {
		t.Fatalf("present %d of %d pages after pipelined prefetch", pvm.PresentPages(), total)
	}
	if want := int(total - desc.PageTablePages); installed != want {
		t.Fatalf("installed = %d, want %d", installed, want)
	}
	if got, want := mt.FetchedBytes(), units.Bytes(installed)*units.PageSize; got != want {
		t.Fatalf("FetchedBytes = %v, want %v", got, want)
	}
	for pfn := pagestore.PFN(desc.PageTablePages); int64(pfn) < total; pfn++ {
		want, _ := src.Read(pfn)
		got, err := pvm.Read(pfn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d corrupted by pipelined prefetch", pfn)
		}
	}
	if st := mt.Resilience(); st.State != memserver.BreakerClosed {
		t.Fatalf("pool unhealthy after clean prefetch: %+v", st)
	}
}

// TestMetricsMatchStats is PR 2's metrics-match-stats pattern applied to
// the new atomic accounting: after a concurrent fault + pipelined
// prefetch workload, the oasis_memtap_* instruments must have moved by
// exactly what the in-process counters report.
func TestMetricsMatchStats(t *testing.T) {
	faults0 := tel.faults.Value()
	bytes0 := tel.bytes.Value()
	dedup0 := tel.dedup.Value()
	prefetched0 := tel.prefetched.Value()

	alloc := 2 * units.MiB
	addr, _ := startBackend(t, 99, alloc)
	res := fastCfg()
	mt, err := NewWithOptions(99, addr, secret, Options{Resilience: &res, PoolSize: 2, PrefetchStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(99, "mm", alloc, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent faults (with same-PFN collisions), then prefetch the rest.
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				pfn := pagestore.PFN(int64(desc.PageTablePages) + int64((w/2*8+i)%32))
				if _, err := pvm.Touch(pfn); err != nil {
					t.Errorf("touch: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := mt.PrefetchRemaining(pvm, 64); err != nil {
		t.Fatal(err)
	}

	if got, want := tel.faults.Value()-faults0, float64(mt.Faults()); got != want {
		t.Errorf("oasis_memtap_faults_total moved %v, stats say %v", got, want)
	}
	if got, want := tel.bytes.Value()-bytes0, float64(mt.FetchedBytes()); got != want {
		t.Errorf("oasis_memtap_fetched_bytes_total moved %v, stats say %v", got, want)
	}
	if got, want := tel.dedup.Value()-dedup0, float64(mt.DedupedFaults()); got != want {
		t.Errorf("oasis_memtap_singleflight_dedup_total moved %v, stats say %v", got, want)
	}
	prefetchedPages := float64(mt.FetchedBytes()/units.PageSize) - float64(mt.Faults())
	if got := tel.prefetched.Value() - prefetched0; got != prefetchedPages {
		t.Errorf("oasis_memtap_prefetched_pages_total moved %v, want %v", got, prefetchedPages)
	}
	if g := tel.inflight.Value(); g != 0 {
		t.Errorf("oasis_memtap_inflight_faults = %v after quiesce", g)
	}
}
