// Package memtap implements the per-partial-VM pager process (§4.2): it
// receives page-fault notifications from the hypervisor and services them
// by fetching pages from the memory server that holds the VM's image,
// decompressing them, and installing the frames.
//
// In the Xen prototype memtap is a dom0 user process wired to the
// hypervisor through an event channel; here it is an object that satisfies
// hypervisor.Pager over a real memserver TCP connection. The connection is
// resilient by default: it reconnects with backoff across memory-server
// crashes and restarts, and when the server is gone long enough for the
// circuit breaker to open, the memtap reports the VM degraded so the host
// agent can force-promote it home from the last good image (§4.4.4)
// instead of wedging every guest fault.
package memtap

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/metrics"
	"oasis/internal/pagestore"
	"oasis/internal/telemetry"
	"oasis/internal/units"
)

// Live telemetry (process-wide, aggregated across a host's memtaps; see
// OBSERVABILITY.md). Fault spans additionally flow to
// telemetry.FaultPath with the stage split fault → tap_lookup →
// remote_fetch → decompress → resolve.
var tel = struct {
	faults      *telemetry.Counter
	faultErrors *telemetry.Counter
	bytes       *telemetry.Counter
	latency     *telemetry.Histogram
	prefetched  *telemetry.Counter
	batches     *telemetry.Counter
}{
	faults: telemetry.Default.Counter("oasis_memtap_faults_total",
		"Page faults serviced from memory servers."),
	faultErrors: telemetry.Default.Counter("oasis_memtap_fault_errors_total",
		"Page faults that failed (including degraded-path errors)."),
	bytes: telemetry.Default.Counter("oasis_memtap_fetched_bytes_total",
		"Uncompressed bytes installed into partial VMs (faults + prefetch)."),
	latency: telemetry.Default.Histogram("oasis_memtap_fault_seconds",
		"End-to-end page-fault service latency.", nil),
	prefetched: telemetry.Default.Counter("oasis_memtap_prefetched_pages_total",
		"Pages installed by PrefetchRemaining (partial→full conversion)."),
	batches: telemetry.Default.Counter("oasis_memtap_prefetch_batches_total",
		"GetPages batches issued by PrefetchRemaining."),
}

// degradedGauge returns the per-VM degraded flag gauge (1 while the
// memtap's breaker is open).
func degradedGauge(vmid pagestore.VMID) *telemetry.Gauge {
	return telemetry.Default.Gauge("oasis_memtap_degraded",
		"1 while the VM's memory-server path is unavailable (breaker open).",
		telemetry.L("vm", fmt.Sprintf("%04d", vmid)))
}

// ErrDegraded marks fault-service errors taken while the memory server is
// unavailable (circuit open). The hypervisor surfaces it up the fault
// path; the agent reacts by promoting or quarantining the VM rather than
// retrying into a dead server.
var ErrDegraded = errors.New("memtap: memory server unavailable, VM degraded")

// PageClient is the slice of the memory-server client surface a memtap
// needs. Both *memserver.Client and *memserver.ResilientClient satisfy
// it; tests may supply in-process fakes.
type PageClient interface {
	GetPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error)
	GetPages(id pagestore.VMID, pfns []pagestore.PFN) (map[pagestore.PFN][]byte, error)
	Close() error
}

// breakerReporter is implemented by clients that expose circuit-breaker
// state (memserver.ResilientClient).
type breakerReporter interface {
	BreakerState() memserver.BreakerState
}

// stagedFetcher is implemented by clients that report the wire/decompress
// stage split of a page fetch (memserver.Client, memserver.ResilientClient);
// FetchPage uses it to attribute fault latency in telemetry.FaultPath
// spans. Plain PageClients fall back to an undivided fetch stage.
type stagedFetcher interface {
	GetPageStaged(id pagestore.VMID, pfn pagestore.PFN) (page []byte, wire, decompress time.Duration, err error)
}

// DefaultResilience is the resilience configuration memtap.New gives its
// client. The host agent may tune it process-wide (e.g. from daemon
// flags) before creating memtaps; tests shrink the backoffs.
var DefaultResilience = memserver.ResilientConfig{}

// Memtap services page faults for one partial VM from one memory server.
// It is safe for concurrent use.
type Memtap struct {
	vmid   pagestore.VMID
	client PageClient

	mu      sync.Mutex
	faults  int64
	bytes   units.Bytes
	latency metrics.Sample
}

// New creates a memtap for the given VM, dialing the memory server at
// addr with the shared secret over a resilient connection (reconnect,
// retry, circuit breaker — see memserver.ResilientClient). The agent
// configures each memtap with the host and port of the memory server
// containing the VM's pages (§4.2).
func New(vmid pagestore.VMID, addr string, secret []byte) (*Memtap, error) {
	cfg := DefaultResilience
	cfg.JitterSeed ^= uint64(vmid) // de-correlate backoff across a host's memtaps
	if cfg.Name == "" {
		cfg.Name = "memtap"
	}
	// Mirror breaker transitions into the per-VM degraded gauge without
	// displacing a caller-supplied hook.
	gauge := degradedGauge(vmid)
	inner := cfg.OnStateChange
	cfg.OnStateChange = func(from, to memserver.BreakerState) {
		if to == memserver.BreakerOpen {
			gauge.Set(1)
		} else {
			gauge.Set(0)
		}
		if inner != nil {
			inner(from, to)
		}
	}
	client, err := memserver.DialResilient(addr, secret, cfg)
	if err != nil {
		return nil, fmt.Errorf("memtap: vm %04d: %w", vmid, err)
	}
	return &Memtap{vmid: vmid, client: client}, nil
}

// NewWithClient wraps an existing client (used by tests and by agents
// that pool connections or need custom resilience settings).
func NewWithClient(vmid pagestore.VMID, client PageClient) *Memtap {
	return &Memtap{vmid: vmid, client: client}
}

// Degraded reports whether the memory-server path is unavailable: the
// resilient client's circuit breaker is open, so guest faults cannot be
// serviced and the agent should promote or quarantine the VM (§4.4.4).
// Memtaps over non-resilient clients never report degraded.
func (m *Memtap) Degraded() bool {
	if br, ok := m.client.(breakerReporter); ok {
		return br.BreakerState() == memserver.BreakerOpen
	}
	return false
}

// Resilience snapshots the client's retry/reconnect/breaker counters
// (zero value for non-resilient clients).
func (m *Memtap) Resilience() memserver.ResilienceStats {
	if rc, ok := m.client.(interface {
		ResilienceStats() memserver.ResilienceStats
	}); ok {
		return rc.ResilienceStats()
	}
	return memserver.ResilienceStats{}
}

// FetchPage implements hypervisor.Pager. Each fault feeds the live
// latency histogram and (sampled) a telemetry.FaultPath span with the
// stage breakdown fault → tap_lookup → remote_fetch → decompress →
// resolve.
func (m *Memtap) FetchPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	start := time.Now()
	span := telemetry.FaultPath.Start("fault")
	if id != m.vmid {
		span.End()
		return nil, fmt.Errorf("memtap: configured for vm %04d, asked for %04d", m.vmid, id)
	}
	span.Stage("tap_lookup")

	var page []byte
	var err error
	if sf, ok := m.client.(stagedFetcher); ok {
		var wire, decompress time.Duration
		page, wire, decompress, err = sf.GetPageStaged(id, pfn)
		span.StageDuration("remote_fetch", wire)
		span.StageDuration("decompress", decompress)
		span.Mark()
	} else {
		page, err = m.client.GetPage(id, pfn)
		span.Stage("remote_fetch")
	}
	if err != nil {
		tel.faultErrors.Inc()
		span.End()
		if errors.Is(err, memserver.ErrCircuitOpen) || m.Degraded() {
			return nil, fmt.Errorf("%w: %w", ErrDegraded, err)
		}
		return nil, err
	}
	m.mu.Lock()
	m.faults++
	m.bytes += units.PageSize
	m.latency.Add(time.Since(start).Seconds())
	m.mu.Unlock()
	tel.faults.Inc()
	tel.bytes.Add(float64(units.PageSize))
	tel.latency.Observe(time.Since(start).Seconds())
	span.Stage("resolve")
	span.End()
	return page, nil
}

// Faults returns the number of faults serviced.
func (m *Memtap) Faults() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// FetchedBytes returns the uncompressed bytes actually installed into the
// VM (on-demand faults plus prefetch installs; pages the prefetcher lost
// a race for are not counted).
func (m *Memtap) FetchedBytes() units.Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// MeanLatency returns the mean fault-service latency.
func (m *Memtap) MeanLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.latency.Mean() * float64(time.Second))
}

// Close releases the connection to the memory server.
func (m *Memtap) Close() error { return m.client.Close() }

// PrefetchRemaining streams every absent page of the partial VM from the
// memory server in batches, converting it into a full VM (§4.4.4: when a
// partial VM becomes active, bring the remaining pages over rather than
// let the user suffer on-demand latency). Pages the guest faults or
// writes concurrently are left untouched. It returns the number of pages
// installed.
func (m *Memtap) PrefetchRemaining(vm *hypervisor.PartialVM, batch int) (int, error) {
	if batch <= 0 {
		batch = 512
	}
	installed := 0
	for {
		pfns := vm.AbsentPages(batch)
		if len(pfns) == 0 {
			return installed, nil
		}
		pages, err := m.client.GetPages(m.vmid, pfns)
		tel.batches.Inc()
		if err != nil {
			if errors.Is(err, memserver.ErrCircuitOpen) || m.Degraded() {
				err = fmt.Errorf("%w: %w", ErrDegraded, err)
			}
			return installed, fmt.Errorf("memtap: prefetch vm %04d: %w", m.vmid, err)
		}
		var batchBytes units.Bytes
		for _, pfn := range pfns {
			page, ok := pages[pfn]
			if !ok {
				return installed, fmt.Errorf("memtap: prefetch vm %04d: server omitted pfn %d", m.vmid, pfn)
			}
			ok, err := vm.Install(pfn, page)
			if err != nil {
				return installed, err
			}
			if ok {
				// Only pages actually installed count toward
				// FetchedBytes; installs that lose the race to a
				// concurrent fault or guest write are dropped.
				installed++
				batchBytes += units.PageSize
			}
		}
		m.mu.Lock()
		m.bytes += batchBytes
		m.mu.Unlock()
		tel.bytes.Add(float64(batchBytes))
		tel.prefetched.Add(float64(batchBytes / units.PageSize))
	}
}
