// Package memtap implements the per-partial-VM pager process (§4.2): it
// receives page-fault notifications from the hypervisor and services them
// by fetching pages from the memory server that holds the VM's image,
// decompressing them, and installing the frames.
//
// In the Xen prototype memtap is a dom0 user process wired to the
// hypervisor through an event channel; here it is an object that satisfies
// hypervisor.Pager over a real memserver TCP connection.
package memtap

import (
	"fmt"
	"sync"
	"time"

	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/metrics"
	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// Memtap services page faults for one partial VM from one memory server.
// It is safe for concurrent use.
type Memtap struct {
	vmid   pagestore.VMID
	client *memserver.Client

	mu      sync.Mutex
	faults  int64
	bytes   units.Bytes
	latency metrics.Sample
}

// New creates a memtap for the given VM, dialing the memory server at
// addr with the shared secret. The agent configures each memtap with the
// host and port of the memory server containing the VM's pages (§4.2).
func New(vmid pagestore.VMID, addr string, secret []byte) (*Memtap, error) {
	client, err := memserver.Dial(addr, secret, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("memtap: vm %04d: %w", vmid, err)
	}
	return &Memtap{vmid: vmid, client: client}, nil
}

// NewWithClient wraps an existing client (used by tests and by agents that
// pool connections).
func NewWithClient(vmid pagestore.VMID, client *memserver.Client) *Memtap {
	return &Memtap{vmid: vmid, client: client}
}

// FetchPage implements hypervisor.Pager.
func (m *Memtap) FetchPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	if id != m.vmid {
		return nil, fmt.Errorf("memtap: configured for vm %04d, asked for %04d", m.vmid, id)
	}
	start := time.Now()
	page, err := m.client.GetPage(id, pfn)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.faults++
	m.bytes += units.PageSize
	m.latency.Add(time.Since(start).Seconds())
	m.mu.Unlock()
	return page, nil
}

// Faults returns the number of faults serviced.
func (m *Memtap) Faults() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// FetchedBytes returns the uncompressed bytes installed.
func (m *Memtap) FetchedBytes() units.Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// MeanLatency returns the mean fault-service latency.
func (m *Memtap) MeanLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.latency.Mean() * float64(time.Second))
}

// Close releases the connection to the memory server.
func (m *Memtap) Close() error { return m.client.Close() }

// PrefetchRemaining streams every absent page of the partial VM from the
// memory server in batches, converting it into a full VM (§4.4.4: when a
// partial VM becomes active, bring the remaining pages over rather than
// let the user suffer on-demand latency). Pages the guest faults or
// writes concurrently are left untouched. It returns the number of pages
// installed.
func (m *Memtap) PrefetchRemaining(vm *hypervisor.PartialVM, batch int) (int, error) {
	if batch <= 0 {
		batch = 512
	}
	installed := 0
	for {
		pfns := vm.AbsentPages(batch)
		if len(pfns) == 0 {
			return installed, nil
		}
		pages, err := m.client.GetPages(m.vmid, pfns)
		if err != nil {
			return installed, fmt.Errorf("memtap: prefetch vm %04d: %w", m.vmid, err)
		}
		for _, pfn := range pfns {
			page, ok := pages[pfn]
			if !ok {
				return installed, fmt.Errorf("memtap: prefetch vm %04d: server omitted pfn %d", m.vmid, pfn)
			}
			if err := vm.Install(pfn, page); err != nil {
				return installed, err
			}
			installed++
		}
		m.mu.Lock()
		m.bytes += units.Bytes(len(pfns)) * units.PageSize
		m.mu.Unlock()
	}
}
