// Package memtap implements the per-partial-VM pager process (§4.2): it
// receives page-fault notifications from the hypervisor and services them
// by fetching pages from the memory server that holds the VM's image,
// decompressing them, and installing the frames.
//
// In the Xen prototype memtap is a dom0 user process wired to the
// hypervisor through an event channel; here it is an object that satisfies
// hypervisor.Pager over a real memserver TCP connection. The connection is
// resilient by default: it reconnects with backoff across memory-server
// crashes and restarts, and when the server is gone long enough for the
// circuit breaker to open, the memtap reports the VM degraded so the host
// agent can force-promote it home from the last good image (§4.4.4)
// instead of wedging every guest fault.
//
// The fault path is concurrent: the hypervisor no longer serialises
// faults behind one lock, so several vCPUs may fault simultaneously.
// Memtap deduplicates concurrent faults on the same PFN (single-flight:
// one remote fetch satisfies every waiter) and can spread traffic over a
// connection pool (Options.PoolSize) with pipelined prefetch batches
// (Options.PrefetchStreams); see DESIGN.md §9 for the concurrency model.
package memtap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/memserver/shard"
	"oasis/internal/metrics"
	"oasis/internal/pagestore"
	"oasis/internal/telemetry"
	"oasis/internal/units"
)

// Live telemetry (process-wide, aggregated across a host's memtaps; see
// OBSERVABILITY.md). Fault spans additionally flow to
// telemetry.FaultPath with the stage split fault → tap_lookup →
// remote_fetch → decompress → resolve.
var tel = struct {
	faults      *telemetry.Counter
	faultErrors *telemetry.Counter
	bytes       *telemetry.Counter
	latency     *telemetry.Histogram
	prefetched  *telemetry.Counter
	batches     *telemetry.Counter
	dedup       *telemetry.Counter
	inflight    *telemetry.Gauge
	reorder     *telemetry.Counter
	zeroElided  *telemetry.Counter
}{
	faults: telemetry.Default.Counter("oasis_memtap_faults_total",
		"Page faults serviced from memory servers."),
	faultErrors: telemetry.Default.Counter("oasis_memtap_fault_errors_total",
		"Page faults that failed (including degraded-path errors)."),
	bytes: telemetry.Default.Counter("oasis_memtap_fetched_bytes_total",
		"Uncompressed bytes installed into partial VMs (faults + prefetch)."),
	latency: telemetry.Default.Histogram("oasis_memtap_fault_seconds",
		"End-to-end page-fault service latency.", nil),
	prefetched: telemetry.Default.Counter("oasis_memtap_prefetched_pages_total",
		"Pages installed by PrefetchRemaining (partial→full conversion)."),
	batches: telemetry.Default.Counter("oasis_memtap_prefetch_batches_total",
		"GetPages batches issued by PrefetchRemaining."),
	dedup: telemetry.Default.Counter("oasis_memtap_singleflight_dedup_total",
		"Concurrent faults coalesced onto an already in-flight fetch of the same PFN."),
	inflight: telemetry.Default.Gauge("oasis_memtap_inflight_faults",
		"Remote page fetches currently in flight (single-flight leaders)."),
	reorder: telemetry.Default.Counter("oasis_memtap_prefetch_reorder_total",
		"Prefetch batches issued out of linear PFN order to follow the guest's recent fault locality."),
	zeroElided: telemetry.Default.Counter("oasis_client_zero_pages_elided_total",
		"Fetched pages recognized as the shared zero page and installed without a 4 KiB scan-and-copy."),
}

// degradedGauge returns the per-VM degraded gauge. It is graded: 0
// while the memory-server path is healthy, 1 while a fabric-backed VM
// is under-replicated (a backend down, hints queued, or tracked ranges
// below their replica target — reads still succeed via failover), and
// 2 while the path is unavailable (single-server breaker open, or every
// fabric backend down).
func degradedGauge(vmid pagestore.VMID) *telemetry.Gauge {
	return telemetry.Default.Gauge("oasis_memtap_degraded",
		"0 healthy, 1 fabric under-replicated (reads still served), 2 memory-server path unavailable.",
		telemetry.L("vm", fmt.Sprintf("%04d", vmid)))
}

// ErrDegraded marks fault-service errors taken while the memory server is
// unavailable (circuit open). The hypervisor surfaces it up the fault
// path; the agent reacts by promoting or quarantining the VM rather than
// retrying into a dead server.
var ErrDegraded = errors.New("memtap: memory server unavailable, VM degraded")

// PageClient is the slice of the memory-server client surface a memtap
// needs. *memserver.Client, *memserver.ResilientClient and
// *memserver.ClientPool all satisfy it; tests may supply in-process fakes.
type PageClient interface {
	GetPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error)
	GetPages(id pagestore.VMID, pfns []pagestore.PFN) (map[pagestore.PFN][]byte, error)
	Close() error
}

// breakerReporter is implemented by clients that expose circuit-breaker
// state (memserver.ResilientClient, memserver.ClientPool).
type breakerReporter interface {
	BreakerState() memserver.BreakerState
}

// stagedFetcher is implemented by clients that report the wire/decompress
// stage split of a page fetch (memserver.Client, memserver.ResilientClient,
// memserver.ClientPool); FetchPage uses it to attribute fault latency in
// telemetry.FaultPath spans. Plain PageClients fall back to an undivided
// fetch stage.
type stagedFetcher interface {
	GetPageStaged(id pagestore.VMID, pfn pagestore.PFN) (page []byte, wire, decompress time.Duration, err error)
}

// DefaultResilience is the resilience configuration memtap.New gives its
// client. The host agent may tune it process-wide (e.g. from daemon
// flags) before creating memtaps; tests shrink the backoffs.
var DefaultResilience = memserver.ResilientConfig{}

// Options tune the transport a memtap dials. The zero value reproduces
// New's defaults: one resilient connection, serial prefetch.
type Options struct {
	// Resilience overrides DefaultResilience for this memtap's
	// connection(s); nil uses DefaultResilience.
	Resilience *memserver.ResilientConfig
	// PoolSize > 1 dials a memserver.ClientPool of that many connections
	// instead of a single ResilientClient, letting concurrent faults and
	// pipelined prefetch batches genuinely overlap on the wire.
	PoolSize int
	// PrefetchStreams is the number of GetPages batches PrefetchRemaining
	// keeps in flight (<= 1 means strictly serial batches). Values above
	// PoolSize waste goroutines — batches would queue on lanes — so
	// agents plumb the same knob into both.
	PrefetchStreams int
	// Backends, when non-empty, dials a sharded memory-server fabric
	// over these addresses instead of the single server at addr: page
	// reads route by consistent-hash placement and fail over between
	// replicas (see memserver/shard). The addr argument is ignored.
	Backends []string
	// Replicas is the fabric's replica count (only with Backends;
	// <= 0 takes the fabric default).
	Replicas int
}

// fetchCall is one in-flight remote fetch; followers wait on done and
// share the leader's result.
type fetchCall struct {
	done chan struct{}
	page []byte
	err  error
}

// Memtap services page faults for one partial VM from one memory server.
// It is safe for concurrent use.
type Memtap struct {
	vmid   pagestore.VMID
	client PageClient

	// fabric is set when client is a sharded fabric; it powers the graded
	// degraded gauge and the Underreplicated/Fabric accessors.
	fabric *shard.Client

	// Fault accounting is atomic: concurrent faults and prefetch streams
	// update these on the hot path without sharing a lock.
	faults atomic.Int64
	bytes  atomic.Int64
	dedup  atomic.Int64

	latMu   sync.Mutex
	latency metrics.Sample

	// inflight implements single-flight deduplication per PFN: the first
	// fault (the leader) fetches; concurrent faults on the same PFN wait
	// for its result instead of issuing duplicate remote fetches.
	sfMu     sync.Mutex
	inflight map[pagestore.PFN]*fetchCall

	prefetchStreams atomic.Int32

	// faultRing is a small lossy ring of recently faulted PFNs (stored
	// +1 so zero means empty). The fault path publishes into it lock-free;
	// the prefetcher drains it to redirect its scan toward the guest's
	// current working set. Overwrites under pressure are fine — only the
	// freshest locality matters.
	faultRing  [faultRingSize]atomic.Int64
	faultRingW atomic.Uint32

	reorders   atomic.Int64
	zeroElided atomic.Int64
}

// faultRingSize bounds the fault-locality hint ring. 32 entries cover a
// few service rounds of concurrent vCPU faults without letting a long
// prefetch round chase stale history.
const faultRingSize = 32

// noteFault publishes a faulted PFN as a prefetch locality hint.
func (m *Memtap) noteFault(pfn pagestore.PFN) {
	slot := (m.faultRingW.Add(1) - 1) % faultRingSize
	m.faultRing[slot].Store(int64(pfn) + 1)
}

// takeFaultHint pops one recent-fault hint, newest-agnostic (slot order),
// or reports none pending.
func (m *Memtap) takeFaultHint() (pagestore.PFN, bool) {
	for i := range m.faultRing {
		if v := m.faultRing[i].Swap(0); v != 0 {
			return pagestore.PFN(v - 1), true
		}
	}
	return 0, false
}

// PrefetchReorders returns how many prefetch batches were issued out of
// linear order to follow fault locality.
func (m *Memtap) PrefetchReorders() int64 { return m.reorders.Load() }

// ZeroPagesElided returns how many fetched pages were recognized as the
// shared zero page and installed without copying.
func (m *Memtap) ZeroPagesElided() int64 { return m.zeroElided.Load() }

func newMemtap(vmid pagestore.VMID, client PageClient) *Memtap {
	return &Memtap{
		vmid:     vmid,
		client:   client,
		inflight: make(map[pagestore.PFN]*fetchCall),
	}
}

// New creates a memtap for the given VM, dialing the memory server at
// addr with the shared secret over a resilient connection (reconnect,
// retry, circuit breaker — see memserver.ResilientClient). The agent
// configures each memtap with the host and port of the memory server
// containing the VM's pages (§4.2).
func New(vmid pagestore.VMID, addr string, secret []byte) (*Memtap, error) {
	return NewWithOptions(vmid, addr, secret, Options{})
}

// NewWithOptions is New with transport tuning: a connection pool and/or
// pipelined prefetch (see Options).
func NewWithOptions(vmid pagestore.VMID, addr string, secret []byte, opts Options) (*Memtap, error) {
	cfg := DefaultResilience
	if opts.Resilience != nil {
		cfg = *opts.Resilience
	}
	cfg.JitterSeed ^= uint64(vmid) // de-correlate backoff across a host's memtaps
	if cfg.Name == "" {
		cfg.Name = "memtap"
	}
	// Mirror breaker transitions into the per-VM degraded gauge without
	// displacing a caller-supplied hook. For a pool this hook is lifted to
	// the aggregate breaker, so the gauge rises only when every lane is
	// down — exactly when the VM is actually degraded. For a shard fabric
	// the hook fires per backend pool, so the gauge is recomputed from the
	// fabric's replication health instead: one dead backend with live
	// replicas is under-replication (level 1), not a degraded VM (level 2).
	gauge := degradedGauge(vmid)
	inner := cfg.OnStateChange
	var fabRef atomic.Pointer[shard.Client]
	if len(opts.Backends) > 0 {
		cfg.OnStateChange = func(from, to memserver.BreakerState) {
			if f := fabRef.Load(); f != nil {
				gauge.Set(float64(fabricHealthLevel(f)))
			}
			if inner != nil {
				inner(from, to)
			}
		}
	} else {
		cfg.OnStateChange = func(from, to memserver.BreakerState) {
			if to == memserver.BreakerOpen {
				gauge.Set(2)
			} else {
				gauge.Set(0)
			}
			if inner != nil {
				inner(from, to)
			}
		}
	}
	var client PageClient
	var err error
	var fab *shard.Client
	switch {
	case len(opts.Backends) > 0:
		fab, err = shard.Dial(opts.Backends, secret, shard.Config{
			Replicas: opts.Replicas,
			Pool: memserver.PoolConfig{
				Size:       opts.PoolSize,
				Resilience: cfg,
			},
		})
		if err == nil {
			fabRef.Store(fab)
			client = fab
		}
	case opts.PoolSize > 1:
		client, err = memserver.DialPool(addr, secret, memserver.PoolConfig{
			Size:       opts.PoolSize,
			Resilience: cfg,
		})
	default:
		client, err = memserver.DialResilient(addr, secret, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("memtap: vm %04d: %w", vmid, err)
	}
	m := newMemtap(vmid, client)
	if fab != nil {
		m.bindFabric(fab, gauge)
	}
	m.SetPrefetchStreams(opts.PrefetchStreams)
	return m, nil
}

// NewWithClient wraps an existing client (used by tests and by agents
// that pool connections or need custom resilience settings). A
// *shard.Client is recognized and bound the same way NewWithOptions
// binds a dialed fabric: the per-VM degraded gauge tracks the fabric's
// replication health (this replaces any hook previously registered on
// the fabric with OnHealthChange).
func NewWithClient(vmid pagestore.VMID, client PageClient) *Memtap {
	m := newMemtap(vmid, client)
	if fab, ok := client.(*shard.Client); ok {
		m.bindFabric(fab, degradedGauge(vmid))
	}
	return m
}

// bindFabric wires a fabric's health transitions into the memtap's
// degraded gauge and remembers the fabric for Fabric()/Underreplicated.
func (m *Memtap) bindFabric(fab *shard.Client, gauge *telemetry.Gauge) {
	m.fabric = fab
	fab.OnHealthChange(func() {
		gauge.Set(float64(fabricHealthLevel(fab)))
	})
	gauge.Set(float64(fabricHealthLevel(fab)))
}

// fabricHealthLevel grades a fabric for the degraded gauge: 0 healthy,
// 1 under-replicated (at least one backend down or owing repair/hint
// replay, or tracked ranges below their replica target — reads still
// work), 2 total loss (every backend's breaker open; faults cannot be
// serviced).
func fabricHealthLevel(f *shard.Client) int {
	if f.BreakerState() == memserver.BreakerOpen {
		return 2
	}
	if f.UnderreplicatedRanges() > 0 {
		return 1
	}
	for _, b := range f.FabricStatus().Backends {
		if b.Breaker == "open" || b.NeedsRepair || b.HintQueue > 0 {
			return 1
		}
	}
	return 0
}

// SetPrefetchStreams sets how many GetPages batches PrefetchRemaining
// keeps in flight; values <= 1 mean strictly serial batches.
func (m *Memtap) SetPrefetchStreams(n int) {
	if n < 1 {
		n = 1
	}
	m.prefetchStreams.Store(int32(n))
}

// PrefetchStreams returns the configured prefetch pipeline depth (>= 1).
func (m *Memtap) PrefetchStreams() int {
	if n := m.prefetchStreams.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// Degraded reports whether the memory-server path is unavailable: the
// resilient client's circuit breaker is open (for a pool: every lane's
// breaker is open), so guest faults cannot be serviced and the agent
// should promote or quarantine the VM (§4.4.4). Memtaps over
// non-resilient clients never report degraded.
func (m *Memtap) Degraded() bool {
	if br, ok := m.client.(breakerReporter); ok {
		return br.BreakerState() == memserver.BreakerOpen
	}
	return false
}

// Underreplicated reports whether the memtap's fabric is serving with
// reduced redundancy: a backend down or owing hint replay/repair, or
// tracked ranges below their replica target. Reads still succeed via
// failover (Degraded stays false), but the VM is one more failure away
// from losing pages. Always false for non-fabric memtaps.
func (m *Memtap) Underreplicated() bool {
	return m.fabric != nil && fabricHealthLevel(m.fabric) >= 1
}

// Fabric returns the sharded fabric behind this memtap, or nil when it
// was dialed against a single server. The agent uses it to apply live
// membership changes (add/remove backend) to per-VM fault paths.
func (m *Memtap) Fabric() *shard.Client {
	return m.fabric
}

// Resilience snapshots the client's retry/reconnect/breaker counters
// (zero value for non-resilient clients; summed across lanes for pools).
func (m *Memtap) Resilience() memserver.ResilienceStats {
	if rc, ok := m.client.(interface {
		ResilienceStats() memserver.ResilienceStats
	}); ok {
		return rc.ResilienceStats()
	}
	return memserver.ResilienceStats{}
}

// FetchPage implements hypervisor.Pager. Concurrent faults on the same
// PFN are deduplicated single-flight: the first caller (the leader)
// performs the remote fetch; the rest wait and share its page and error.
// Only the leader's fetch is counted in Faults/FetchedBytes — the page is
// installed once, so the accounting stays exact — while coalesced waiters
// tick the dedup counter. Each leader fault feeds the live latency
// histogram and (sampled) a telemetry.FaultPath span with the stage
// breakdown fault → tap_lookup → remote_fetch → decompress → resolve.
func (m *Memtap) FetchPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	if id != m.vmid {
		return nil, fmt.Errorf("memtap: configured for vm %04d, asked for %04d", m.vmid, id)
	}
	m.sfMu.Lock()
	if c, ok := m.inflight[pfn]; ok {
		m.sfMu.Unlock()
		m.dedup.Add(1)
		tel.dedup.Inc()
		<-c.done
		return c.page, c.err
	}
	c := &fetchCall{done: make(chan struct{})}
	m.inflight[pfn] = c
	m.sfMu.Unlock()
	tel.inflight.Inc()

	c.page, c.err = m.fetchRemote(id, pfn)

	// Deregister before waking the waiters: a fault arriving after this
	// point starts a fresh fetch (the page may have been evicted again),
	// while every waiter that joined this call gets this result.
	m.sfMu.Lock()
	delete(m.inflight, pfn)
	m.sfMu.Unlock()
	tel.inflight.Dec()
	close(c.done)
	return c.page, c.err
}

// fetchRemote performs one remote page fetch with tracing and accounting
// (the single-flight leader's path).
func (m *Memtap) fetchRemote(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	start := time.Now()
	span := telemetry.FaultPath.Start("fault")
	span.Stage("tap_lookup")

	var page []byte
	var err error
	if sf, ok := m.client.(stagedFetcher); ok {
		var wire, decompress time.Duration
		page, wire, decompress, err = sf.GetPageStaged(id, pfn)
		span.StageDuration("remote_fetch", wire)
		span.StageDuration("decompress", decompress)
		span.Mark()
	} else {
		page, err = m.client.GetPage(id, pfn)
		span.Stage("remote_fetch")
	}
	if err != nil {
		tel.faultErrors.Inc()
		span.End()
		if errors.Is(err, memserver.ErrCircuitOpen) || m.Degraded() {
			return nil, fmt.Errorf("%w: %w", ErrDegraded, err)
		}
		return nil, err
	}
	m.faults.Add(1)
	m.bytes.Add(int64(units.PageSize))
	m.noteFault(pfn)
	elapsed := time.Since(start).Seconds()
	m.latMu.Lock()
	m.latency.Add(elapsed)
	m.latMu.Unlock()
	tel.faults.Inc()
	tel.bytes.Add(float64(units.PageSize))
	tel.latency.Observe(elapsed)
	span.Stage("resolve")
	span.End()
	return page, nil
}

// Faults returns the number of remote fetches that serviced faults
// (coalesced waiters are not double-counted; see DedupedFaults).
func (m *Memtap) Faults() int64 { return m.faults.Load() }

// DedupedFaults returns how many concurrent faults were coalesced onto an
// already in-flight fetch of the same PFN.
func (m *Memtap) DedupedFaults() int64 { return m.dedup.Load() }

// FetchedBytes returns the uncompressed bytes actually installed into the
// VM (on-demand faults plus prefetch installs; pages the prefetcher lost
// a race for are not counted).
func (m *Memtap) FetchedBytes() units.Bytes { return units.Bytes(m.bytes.Load()) }

// MeanLatency returns the mean fault-service latency.
func (m *Memtap) MeanLatency() time.Duration {
	m.latMu.Lock()
	defer m.latMu.Unlock()
	return time.Duration(m.latency.Mean() * float64(time.Second))
}

// Close releases the connection to the memory server.
func (m *Memtap) Close() error { return m.client.Close() }

// prefetchRun is the shared state of one PrefetchRemaining call: a claim
// set preventing two streams from fetching the same pages, a linear scan
// cursor, and the error latch that aborts every stream.
type prefetchRun struct {
	m  *Memtap
	vm *hypervisor.PartialVM

	batch int

	mu      sync.Mutex
	claimed map[pagestore.PFN]struct{}
	cursor  pagestore.PFN

	errMu    sync.Mutex
	firstErr error
}

// fail latches the first error; every stream checks failed() and drains.
func (r *prefetchRun) fail(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
}

func (r *prefetchRun) failed() bool {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr != nil
}

// collect claims up to max unclaimed absent pages starting at from.
// Callers hold r.mu.
func (r *prefetchRun) collect(from pagestore.PFN, max int) []pagestore.PFN {
	var out []pagestore.PFN
	for len(out) < max {
		// Over-fetch so a run of already-claimed pages (another stream's
		// in-flight batch) doesn't stall the scan.
		cand := r.vm.AbsentPagesFrom(from, 2*max)
		if len(cand) == 0 {
			break
		}
		for _, pfn := range cand {
			if _, taken := r.claimed[pfn]; taken {
				continue
			}
			out = append(out, pfn)
			if len(out) >= max {
				break
			}
		}
		from = cand[len(cand)-1] + 1
	}
	for _, pfn := range out {
		r.claimed[pfn] = struct{}{}
	}
	return out
}

// nextBatch claims the next batch of absent pages. Recent guest faults
// redirect the scan: a fault at PFN p means the guest is working near p,
// so the pages right after it are the likeliest next on-demand misses
// and prefetching them first turns would-be faults into installs. With
// no hints pending, the scan proceeds from the ascending cursor (with
// one wrap to sweep pages behind it). nil means every absent page is
// claimed by an in-flight batch — the stream is done.
func (r *prefetchRun) nextBatch() []pagestore.PFN {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		hint, ok := r.m.takeFaultHint()
		if !ok {
			break
		}
		if pfns := r.collect(hint, r.batch); len(pfns) > 0 {
			r.m.reorders.Add(1)
			tel.reorder.Inc()
			return pfns
		}
	}
	for {
		if pfns := r.collect(r.cursor, r.batch); len(pfns) > 0 {
			r.cursor = pfns[len(pfns)-1] + 1
			return pfns
		}
		if r.cursor == 0 {
			return nil
		}
		r.cursor = 0
	}
}

// unclaim releases a completed batch's claims (its pages are present
// now, or the run is aborting on its error).
func (r *prefetchRun) unclaim(pfns []pagestore.PFN) {
	r.mu.Lock()
	for _, pfn := range pfns {
		delete(r.claimed, pfn)
	}
	r.mu.Unlock()
}

// PrefetchRemaining streams every absent page of the partial VM from the
// memory server in batches, converting it into a full VM (§4.4.4: when a
// partial VM becomes active, bring the remaining pages over rather than
// let the user suffer on-demand latency). Pages the guest faults or
// writes concurrently are left untouched. It returns the number of pages
// installed.
//
// Batch ordering is adaptive: the fault path publishes recently faulted
// PFNs into a small ring, and the prefetcher redirects its scan to the
// pages right after the guest's latest faults (counted by
// oasis_memtap_prefetch_reorder_total) before falling back to an
// ascending sweep. With PrefetchStreams > 1 that scan feeds up to that
// many continuously running streams — each claims a batch, fetches, and
// installs while the others are still on the wire, with no barrier
// between rounds; a slow batch no longer stalls the other lanes. Over a
// pool of size >= streams the batches also genuinely overlap on the
// network. Serial and pipelined runs install the same set of pages.
func (m *Memtap) PrefetchRemaining(vm *hypervisor.PartialVM, batch int) (int, error) {
	if batch <= 0 {
		batch = 512
	}
	streams := m.PrefetchStreams()
	r := &prefetchRun{m: m, vm: vm, batch: batch, claimed: make(map[pagestore.PFN]struct{})}

	var installed atomic.Int64
	work := func() {
		for !r.failed() {
			pfns := r.nextBatch()
			if pfns == nil {
				return
			}
			pages, err := m.client.GetPages(m.vmid, pfns)
			tel.batches.Inc()
			if err != nil {
				r.unclaim(pfns)
				if errors.Is(err, memserver.ErrCircuitOpen) || m.Degraded() {
					err = fmt.Errorf("%w: %w", ErrDegraded, err)
				}
				r.fail(fmt.Errorf("memtap: prefetch vm %04d: %w", m.vmid, err))
				return
			}
			n, err := m.installBatch(vm, pfns, pages)
			installed.Add(int64(n))
			r.unclaim(pfns)
			if err != nil {
				r.fail(err)
				return
			}
		}
	}

	if streams <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < streams; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	r.errMu.Lock()
	err := r.firstErr
	r.errMu.Unlock()
	return int(installed.Load()), err
}

// installBatch installs one fetched batch into the VM, counting only the
// pages actually installed (installs that lose the race to a concurrent
// fault or guest write are dropped from the accounting).
func (m *Memtap) installBatch(vm *hypervisor.PartialVM, pfns []pagestore.PFN, pages map[pagestore.PFN][]byte) (installed int, err error) {
	var batchBytes units.Bytes
	defer func() {
		m.bytes.Add(int64(batchBytes))
		tel.bytes.Add(float64(batchBytes))
		tel.prefetched.Add(float64(batchBytes / units.PageSize))
	}()
	for _, pfn := range pfns {
		page, ok := pages[pfn]
		if !ok {
			return installed, fmt.Errorf("memtap: prefetch vm %04d: server omitted pfn %d", m.vmid, pfn)
		}
		if pagestore.IsSharedZero(page) {
			// The decoder handed back its shared zero page: install the
			// elided form instead of scanning and copying 4 KiB of zeros.
			page = nil
			m.zeroElided.Add(1)
			tel.zeroElided.Inc()
		}
		ok, err := vm.Install(pfn, page)
		if err != nil {
			return installed, err
		}
		if ok {
			installed++
			batchBytes += units.PageSize
		}
	}
	return installed, nil
}
