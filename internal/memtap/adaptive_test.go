package memtap

import (
	"bytes"
	"testing"

	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/pagestore"
	"oasis/internal/units"
)

// startZeroHeavyBackend is startBackend with a mixed image: non-zero
// pages interleaved with explicitly zeroed ones, so elision and the
// zero fast path are exercised.
func startZeroHeavyBackend(t *testing.T, vmid pagestore.VMID, alloc units.Bytes) (string, *pagestore.Image) {
	t.Helper()
	srv := memserver.NewServer(secret, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	im := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < im.NumPages(); pfn++ {
		if pfn%3 == 0 {
			continue // zero page (untouched)
		}
		p := bytes.Repeat([]byte{byte(pfn%250 + 1)}, int(units.PageSize))
		if err := im.Write(pfn, p); err != nil {
			t.Fatal(err)
		}
	}
	srv.Store().Put(vmid, im)
	return addr.String(), im
}

// fullReadback compares every fetched page against the source image.
// Page-table frames travel with the descriptor, not the pager, so the
// comparison starts after them.
func fullReadback(t *testing.T, pvm *hypervisor.PartialVM, src *pagestore.Image) {
	t.Helper()
	for pfn := pagestore.PFN(pvm.Desc().PageTablePages); int64(pfn) < src.NumPages(); pfn++ {
		got, err := pvm.Image().Read(pfn)
		if err != nil {
			t.Fatal(err)
		}
		want, err := src.Read(pfn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d differs after prefetch", pfn)
		}
	}
}

// TestAdaptivePrefetchFollowsFaults seeds the fault-hint ring mid-image
// and checks the prefetcher issues locality-directed batches (the
// reorder counter moves) while still converting the VM fully and
// correctly.
func TestAdaptivePrefetchFollowsFaults(t *testing.T) {
	addr, src := startBackend(t, 61, 2*units.MiB)
	mt, err := New(61, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(61, "adaptive", 2*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	// Fault a page in the back half: the guest's working set is "there".
	hot := pagestore.PFN(desc.Alloc.Pages() * 3 / 4)
	if _, err := pvm.Touch(hot); err != nil {
		t.Fatal(err)
	}
	if mt.PrefetchReorders() != 0 {
		t.Fatal("reorders counted before any prefetch")
	}
	if _, err := mt.PrefetchRemaining(pvm, 32); err != nil {
		t.Fatal(err)
	}
	if mt.PrefetchReorders() == 0 {
		t.Fatal("prefetch ignored the recorded fault hint")
	}
	if got := pvm.PresentPages(); got != desc.Alloc.Pages() {
		t.Fatalf("present %d/%d pages after prefetch", got, desc.Alloc.Pages())
	}
	fullReadback(t, pvm, src)
}

// TestPrefetchSerialPooledEquivalent converts the same image serially
// and with pipelined streams over a pool; both must install exactly the
// absent-page count and reproduce the source bit for bit.
func TestPrefetchSerialPooledEquivalent(t *testing.T) {
	const alloc = 2 * units.MiB
	run := func(opts Options) (int, *hypervisor.PartialVM, *pagestore.Image) {
		addr, src := startZeroHeavyBackend(t, 62, alloc)
		mt, err := NewWithOptions(62, addr, secret, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mt.Close() })
		desc := hypervisor.NewDescriptor(62, "equiv", alloc, 1)
		pvm, err := hypervisor.NewPartialVM(desc, mt)
		if err != nil {
			t.Fatal(err)
		}
		n, err := mt.PrefetchRemaining(pvm, 64)
		if err != nil {
			t.Fatal(err)
		}
		return n, pvm, src
	}

	nSerial, pvmS, srcS := run(Options{})
	nPooled, pvmP, srcP := run(Options{PoolSize: 3, PrefetchStreams: 3})
	if nSerial != nPooled {
		t.Fatalf("serial installed %d pages, pooled %d", nSerial, nPooled)
	}
	fullReadback(t, pvmS, srcS)
	fullReadback(t, pvmP, srcP)
}

// TestPrefetchZeroElision checks zero pages fetched by the prefetcher
// ride the shared-zero fast path (counted, uncopied) and still read
// back as zeros.
func TestPrefetchZeroElision(t *testing.T) {
	addr, src := startZeroHeavyBackend(t, 63, 1*units.MiB)
	mt, err := New(63, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(63, "zero", 1*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.PrefetchRemaining(pvm, 32); err != nil {
		t.Fatal(err)
	}
	if mt.ZeroPagesElided() == 0 {
		t.Fatal("no zero pages elided from a zero-heavy image")
	}
	fullReadback(t, pvm, src)
}
