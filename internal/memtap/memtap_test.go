package memtap

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/migration"
	"oasis/internal/pagestore"
	"oasis/internal/rng"
	"oasis/internal/units"
	"oasis/internal/vm"
	"oasis/internal/workload"
)

var secret = []byte("memtap-test")

// startBackend brings up a real memory server preloaded with a VM image
// and returns its address plus the source image for verification.
func startBackend(t *testing.T, vmid pagestore.VMID, alloc units.Bytes) (string, *pagestore.Image) {
	t.Helper()
	srv := memserver.NewServer(secret, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	r := rng.New(uint64(vmid))
	im := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < im.NumPages(); pfn++ {
		p := bytes.Repeat([]byte{byte(pfn%250 + 1)}, int(units.PageSize))
		p[0] = byte(r.Uint64()) // make pages distinct-ish
		if err := im.Write(pfn, p); err != nil {
			t.Fatal(err)
		}
	}
	srv.Store().Put(vmid, im)
	return addr.String(), im
}

func TestMemtapServicesFaults(t *testing.T) {
	addr, src := startBackend(t, 1234, 4*units.MiB)
	mt, err := New(1234, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()

	desc := hypervisor.NewDescriptor(1234, "t", 4*units.MiB, 1)
	vm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	pfn := pagestore.PFN(desc.PageTablePages + 3)
	got, err := vm.Read(pfn)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.Read(pfn)
	if !bytes.Equal(got, want) {
		t.Fatal("fetched page does not match the memory-server image")
	}
	if mt.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1", mt.Faults())
	}
	if mt.FetchedBytes() != units.PageSize {
		t.Fatalf("FetchedBytes = %v", mt.FetchedBytes())
	}
	if mt.MeanLatency() <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestMemtapRejectsWrongVM(t *testing.T) {
	addr, _ := startBackend(t, 7, 1*units.MiB)
	mt, err := New(7, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	if _, err := mt.FetchPage(8, 0); err == nil {
		t.Error("memtap served a VM it is not configured for")
	}
}

func TestMemtapDialFailure(t *testing.T) {
	if _, err := New(1, "127.0.0.1:1", secret); err == nil {
		t.Error("dial to dead port succeeded")
	}
}

func TestPrefetchRemainingConvertsToFull(t *testing.T) {
	addr, src := startBackend(t, 31, 2*units.MiB)
	mt, err := New(31, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(31, "prefetch", 2*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty one local page first; prefetch must not clobber it.
	local := bytes.Repeat([]byte{0x99}, int(units.PageSize))
	if err := pvm.Write(100, local); err != nil {
		t.Fatal(err)
	}
	n, err := mt.PrefetchRemaining(pvm, 64)
	if err != nil {
		t.Fatal(err)
	}
	total := desc.Alloc.Pages()
	if pvm.PresentPages() != total {
		t.Fatalf("present %d of %d pages after prefetch", pvm.PresentPages(), total)
	}
	if int64(n) != total-desc.PageTablePages-1 {
		t.Fatalf("installed %d pages, want %d", n, total-desc.PageTablePages-1)
	}
	// No faults were needed, and contents match the image.
	if mt.Faults() != 0 {
		t.Fatalf("prefetch caused %d faults", mt.Faults())
	}
	for _, pfn := range []pagestore.PFN{10, 200, pagestore.PFN(total - 1)} {
		if pfn == 100 {
			continue
		}
		want, _ := src.Read(pfn)
		got, err := pvm.Read(pfn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d mismatch after prefetch", pfn)
		}
	}
	// The locally written page survived and is the only dirty one.
	got, _ := pvm.Read(100)
	if !bytes.Equal(got, local) {
		t.Fatal("prefetch clobbered a locally written page")
	}
	if pages := pvm.DirtyPages(); len(pages) != 1 || pages[0] != 100 {
		t.Fatalf("dirty pages = %v, want [100]", pages)
	}
}

// TestWorkloadDrivenFaulting drives a real partial VM with the calibrated
// idle access process (Figure 1's model) and checks that the bytes
// fetched over the wire match what the analytic model predicts: the two
// layers of the reproduction — functional and modelled — agree.
func TestWorkloadDrivenFaulting(t *testing.T) {
	alloc := 8 * units.MiB
	addr, _ := startBackend(t, 77, alloc)
	mt, err := New(77, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(77, "wl", alloc, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}

	// Replay 10 simulated minutes of desktop idle bursts, mapping each
	// burst onto the guest address space. The VM is small, so accesses
	// wrap and re-touch resident pages — exactly the working-set effect
	// that bounds on-demand traffic.
	proc := workload.NewAccessProcess(vm.Desktop, rng.New(9))
	r := rng.New(10)
	var elapsed time.Duration
	touched := int64(0)
	npages := alloc.Pages()
	for elapsed < 10*time.Minute {
		gap, pages := proc.NextBurst()
		elapsed += gap
		base := r.Int63n(npages)
		for i := 0; i < pages; i++ {
			pfn := pagestore.PFN((base + int64(i)) % npages)
			if _, err := pvm.Touch(pfn); err != nil {
				t.Fatal(err)
			}
			touched++
		}
	}
	// Fetched bytes are bounded by the allocation (the working set here)
	// and must be non-trivial.
	fetched := mt.FetchedBytes()
	if fetched <= 0 || fetched > alloc {
		t.Fatalf("fetched %v for an %v VM", fetched, alloc)
	}
	// The model's prediction for the same episode: rate x time, capped
	// by the working set (= the whole small VM).
	model := migration.MicroBenchModel()
	predicted := model.OnDemandFetch(migration.DesktopRate, alloc, elapsed)
	ratio := float64(fetched) / float64(predicted)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("functional fetch %v vs model %v (ratio %.2f)", fetched, predicted, ratio)
	}
}
