package memtap

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"oasis/internal/faultinject"
	"oasis/internal/hypervisor"
	"oasis/internal/memserver"
	"oasis/internal/migration"
	"oasis/internal/pagestore"
	"oasis/internal/rng"
	"oasis/internal/units"
	"oasis/internal/vm"
	"oasis/internal/workload"
)

var secret = []byte("memtap-test")

// startBackend brings up a real memory server preloaded with a VM image
// and returns its address plus the source image for verification.
func startBackend(t *testing.T, vmid pagestore.VMID, alloc units.Bytes) (string, *pagestore.Image) {
	t.Helper()
	srv := memserver.NewServer(secret, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	r := rng.New(uint64(vmid))
	im := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < im.NumPages(); pfn++ {
		p := bytes.Repeat([]byte{byte(pfn%250 + 1)}, int(units.PageSize))
		p[0] = byte(r.Uint64()) // make pages distinct-ish
		if err := im.Write(pfn, p); err != nil {
			t.Fatal(err)
		}
	}
	srv.Store().Put(vmid, im)
	return addr.String(), im
}

func TestMemtapServicesFaults(t *testing.T) {
	addr, src := startBackend(t, 1234, 4*units.MiB)
	mt, err := New(1234, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()

	desc := hypervisor.NewDescriptor(1234, "t", 4*units.MiB, 1)
	vm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	pfn := pagestore.PFN(desc.PageTablePages + 3)
	got, err := vm.Read(pfn)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.Read(pfn)
	if !bytes.Equal(got, want) {
		t.Fatal("fetched page does not match the memory-server image")
	}
	if mt.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1", mt.Faults())
	}
	if mt.FetchedBytes() != units.PageSize {
		t.Fatalf("FetchedBytes = %v", mt.FetchedBytes())
	}
	if mt.MeanLatency() <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestMemtapRejectsWrongVM(t *testing.T) {
	addr, _ := startBackend(t, 7, 1*units.MiB)
	mt, err := New(7, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	if _, err := mt.FetchPage(8, 0); err == nil {
		t.Error("memtap served a VM it is not configured for")
	}
}

func TestMemtapDialFailure(t *testing.T) {
	if _, err := New(1, "127.0.0.1:1", secret); err == nil {
		t.Error("dial to dead port succeeded")
	}
}

func TestPrefetchRemainingConvertsToFull(t *testing.T) {
	addr, src := startBackend(t, 31, 2*units.MiB)
	mt, err := New(31, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(31, "prefetch", 2*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty one local page first; prefetch must not clobber it.
	local := bytes.Repeat([]byte{0x99}, int(units.PageSize))
	if err := pvm.Write(100, local); err != nil {
		t.Fatal(err)
	}
	n, err := mt.PrefetchRemaining(pvm, 64)
	if err != nil {
		t.Fatal(err)
	}
	total := desc.Alloc.Pages()
	if pvm.PresentPages() != total {
		t.Fatalf("present %d of %d pages after prefetch", pvm.PresentPages(), total)
	}
	if int64(n) != total-desc.PageTablePages-1 {
		t.Fatalf("installed %d pages, want %d", n, total-desc.PageTablePages-1)
	}
	// No faults were needed, and contents match the image.
	if mt.Faults() != 0 {
		t.Fatalf("prefetch caused %d faults", mt.Faults())
	}
	for _, pfn := range []pagestore.PFN{10, 200, pagestore.PFN(total - 1)} {
		if pfn == 100 {
			continue
		}
		want, _ := src.Read(pfn)
		got, err := pvm.Read(pfn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d mismatch after prefetch", pfn)
		}
	}
	// The locally written page survived and is the only dirty one.
	got, _ := pvm.Read(100)
	if !bytes.Equal(got, local) {
		t.Fatal("prefetch clobbered a locally written page")
	}
	if pages := pvm.DirtyPages(); len(pages) != 1 || pages[0] != 100 {
		t.Fatalf("dirty pages = %v, want [100]", pages)
	}
}

// TestWorkloadDrivenFaulting drives a real partial VM with the calibrated
// idle access process (Figure 1's model) and checks that the bytes
// fetched over the wire match what the analytic model predicts: the two
// layers of the reproduction — functional and modelled — agree.
func TestWorkloadDrivenFaulting(t *testing.T) {
	alloc := 8 * units.MiB
	addr, _ := startBackend(t, 77, alloc)
	mt, err := New(77, addr, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := hypervisor.NewDescriptor(77, "wl", alloc, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}

	// Replay 10 simulated minutes of desktop idle bursts, mapping each
	// burst onto the guest address space. The VM is small, so accesses
	// wrap and re-touch resident pages — exactly the working-set effect
	// that bounds on-demand traffic.
	proc := workload.NewAccessProcess(vm.Desktop, rng.New(9))
	r := rng.New(10)
	var elapsed time.Duration
	touched := int64(0)
	npages := alloc.Pages()
	for elapsed < 10*time.Minute {
		gap, pages := proc.NextBurst()
		elapsed += gap
		base := r.Int63n(npages)
		for i := 0; i < pages; i++ {
			pfn := pagestore.PFN((base + int64(i)) % npages)
			if _, err := pvm.Touch(pfn); err != nil {
				t.Fatal(err)
			}
			touched++
		}
	}
	// Fetched bytes are bounded by the allocation (the working set here)
	// and must be non-trivial.
	fetched := mt.FetchedBytes()
	if fetched <= 0 || fetched > alloc {
		t.Fatalf("fetched %v for an %v VM", fetched, alloc)
	}
	// The model's prediction for the same episode: rate x time, capped
	// by the working set (= the whole small VM).
	model := migration.MicroBenchModel()
	predicted := model.OnDemandFetch(migration.DesktopRate, alloc, elapsed)
	ratio := float64(fetched) / float64(predicted)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("functional fetch %v vs model %v (ratio %.2f)", fetched, predicted, ratio)
	}
}

// stubClient is an in-process PageClient whose GetPages can run a hook
// before returning, letting tests race the prefetcher against guest
// activity deterministically.
type stubClient struct {
	src        *pagestore.Image
	beforeRet  func(pfns []pagestore.PFN)
	closeCalls int
}

func (s *stubClient) GetPage(id pagestore.VMID, pfn pagestore.PFN) ([]byte, error) {
	return s.src.Read(pfn)
}

func (s *stubClient) GetPages(id pagestore.VMID, pfns []pagestore.PFN) (map[pagestore.PFN][]byte, error) {
	out := make(map[pagestore.PFN][]byte, len(pfns))
	for _, pfn := range pfns {
		p, err := s.src.Read(pfn)
		if err != nil {
			return nil, err
		}
		out[pfn] = p
	}
	if s.beforeRet != nil {
		s.beforeRet(pfns)
	}
	return out, nil
}

func (s *stubClient) Close() error { s.closeCalls++; return nil }

// TestPrefetchAccountingSkipsRacedPages verifies the satellite fix: when
// a guest write lands between GetPages and Install, the skipped install
// must not be counted in FetchedBytes or the installed-page total.
func TestPrefetchAccountingSkipsRacedPages(t *testing.T) {
	alloc := 2 * units.MiB
	src := pagestore.NewImage(alloc)
	for pfn := pagestore.PFN(0); int64(pfn) < src.NumPages(); pfn++ {
		if err := src.Write(pfn, bytes.Repeat([]byte{byte(pfn%251 + 1)}, int(units.PageSize))); err != nil {
			t.Fatal(err)
		}
	}
	desc := hypervisor.NewDescriptor(55, "race", alloc, 1)

	var pvm *hypervisor.PartialVM
	raced := 0
	local := bytes.Repeat([]byte{0xAB}, int(units.PageSize))
	stub := &stubClient{src: src, beforeRet: func(pfns []pagestore.PFN) {
		// The guest writes the first page of every batch after the
		// server has already shipped it: the install must lose.
		if err := pvm.Write(pfns[0], local); err != nil {
			t.Fatal(err)
		}
		raced++
	}}
	mt := NewWithClient(55, stub)
	var err error
	pvm, err = hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}

	installed, err := mt.PrefetchRemaining(pvm, 64)
	if err != nil {
		t.Fatal(err)
	}
	total := desc.Alloc.Pages()
	if pvm.PresentPages() != total {
		t.Fatalf("present %d of %d pages", pvm.PresentPages(), total)
	}
	want := int(total - desc.PageTablePages - int64(raced))
	if installed != want {
		t.Fatalf("installed = %d, want %d (%d raced writes)", installed, want, raced)
	}
	if got, want := mt.FetchedBytes(), units.Bytes(installed)*units.PageSize; got != want {
		t.Fatalf("FetchedBytes = %v, want %v: raced pages were counted", got, want)
	}
	// The guest's writes survived.
	for _, pfn := range pvm.DirtyPages() {
		got, _ := pvm.Read(pfn)
		if !bytes.Equal(got, local) {
			t.Fatalf("pfn %d: prefetch clobbered a raced guest write", pfn)
		}
	}
}

// fastCfg is a millisecond-scale resilience config for fault tests.
func fastCfg() memserver.ResilientConfig {
	return memserver.ResilientConfig{
		MaxRetries:       6,
		MutatingRetries:  3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		BreakerThreshold: 1 << 30, // breaker behaviour tested separately
		BreakerCooldown:  20 * time.Millisecond,
		DialTimeout:      time.Second,
		OpTimeout:        2 * time.Second,
		JitterSeed:       7,
	}
}

// restartableBackend is a memory server that can be killed and revived
// on the same address with the same store, like a daemon restarting from
// its persist dir.
type restartableBackend struct {
	t     *testing.T
	store *pagestore.Store
	addr  string
	mu    sync.Mutex
	srv   *memserver.Server
}

func newRestartableBackend(t *testing.T, vmid pagestore.VMID, alloc units.Bytes) (*restartableBackend, *pagestore.Image) {
	t.Helper()
	rb := &restartableBackend{t: t, store: pagestore.NewStore()}
	im := pagestore.NewImage(alloc)
	r := rng.New(uint64(vmid) + 99)
	for pfn := pagestore.PFN(0); int64(pfn) < im.NumPages(); pfn++ {
		p := bytes.Repeat([]byte{byte(pfn%250 + 1)}, int(units.PageSize))
		p[1] = byte(r.Uint64())
		if err := im.Write(pfn, p); err != nil {
			t.Fatal(err)
		}
	}
	rb.store.Put(vmid, im)
	srv := memserver.NewServerWithStore(secret, rb.store, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rb.addr = addr.String()
	rb.srv = srv
	t.Cleanup(func() { rb.kill() })
	return rb, im
}

func (rb *restartableBackend) kill() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.srv != nil {
		rb.srv.Close()
		rb.srv = nil
	}
}

func (rb *restartableBackend) restart() error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.srv != nil {
		return nil
	}
	srv := memserver.NewServerWithStore(secret, rb.store, rb.t.Logf)
	if _, err := srv.Listen(rb.addr); err != nil {
		return err
	}
	rb.srv = srv
	return nil
}

// verifyIdentical asserts every page of the partial VM matches the
// source image (modulo pages the test wrote locally, passed in skip;
// page-table frames travel with the descriptor, not the pager, so they
// are excluded too).
func verifyIdentical(t *testing.T, pvm *hypervisor.PartialVM, src *pagestore.Image, skip map[pagestore.PFN]bool) {
	t.Helper()
	for pfn := pagestore.PFN(pvm.Desc().PageTablePages); int64(pfn) < src.NumPages(); pfn++ {
		if skip[pfn] {
			continue
		}
		got, err := pvm.Read(pfn)
		if err != nil {
			t.Fatalf("read pfn %d: %v", pfn, err)
		}
		want, _ := src.Read(pfn)
		if !bytes.Equal(got, want) {
			t.Fatalf("pfn %d differs from the source image", pfn)
		}
	}
}

// TestPrefetchSurvivesServerRestart is the first leg of the fault
// matrix: the memory server is killed and restarted mid-prefetch; the
// resilient client must resume and the VM must end byte-identical to
// its image.
func TestPrefetchSurvivesServerRestart(t *testing.T) {
	rb, src := newRestartableBackend(t, 61, 8*units.MiB)
	rc, err := memserver.DialResilient(rb.addr, secret, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	mt := NewWithClient(61, rc)
	defer mt.Close()
	desc := hypervisor.NewDescriptor(61, "restart", 8*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the server once the prefetch is under way, then revive it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(5 * time.Millisecond)
		rb.kill()
		time.Sleep(10 * time.Millisecond)
		if err := rb.restart(); err != nil {
			t.Errorf("restart: %v", err)
		}
	}()

	// A single PrefetchRemaining may fail if an op exhausts its retry
	// budget during the outage window; re-driving it (what the agent's
	// promotion path does) must converge.
	var installed int
	for tries := 0; ; tries++ {
		n, err := mt.PrefetchRemaining(pvm, 16)
		installed += n
		if err == nil {
			break
		}
		if tries > 50 {
			t.Fatalf("prefetch never converged across restart: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-done
	if pvm.PresentPages() != desc.Alloc.Pages() {
		t.Fatalf("present %d of %d pages", pvm.PresentPages(), desc.Alloc.Pages())
	}
	if got := mt.Resilience(); got.Reconnects == 0 {
		t.Fatalf("restart exercised no reconnects: %+v", got)
	}
	verifyIdentical(t, pvm, src, nil)
}

// TestPrefetchSurvivesFaultStorm is the second leg of the fault matrix:
// the transport resets reads, tears frames mid-write and drops dials
// while the prefetcher streams the image; the VM must still end
// byte-identical.
func TestPrefetchSurvivesFaultStorm(t *testing.T) {
	rb, src := newRestartableBackend(t, 62, 8*units.MiB)
	inj := faultinject.New(23, faultinject.Config{
		DialFail: 0.1, ReadErr: 0.08, WriteErr: 0.04, PartialWrite: 0.04,
	})
	cfg := fastCfg()
	cfg.Dialer = func() (*memserver.Client, error) {
		conn, err := inj.Dial(func() (net.Conn, error) {
			return net.DialTimeout("tcp", rb.addr, time.Second)
		})
		if err != nil {
			return nil, err
		}
		return memserver.NewClientConn(conn, secret)
	}
	rc := memserver.NewResilient(cfg)
	mt := NewWithClient(62, rc)
	defer mt.Close()
	desc := hypervisor.NewDescriptor(62, "storm", 8*units.MiB, 1)
	pvm, err := hypervisor.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a local page before the storm; it must survive untouched.
	local := bytes.Repeat([]byte{0x5C}, int(units.PageSize))
	if err := pvm.Write(33, local); err != nil {
		t.Fatal(err)
	}

	for tries := 0; ; tries++ {
		_, err := mt.PrefetchRemaining(pvm, 32)
		if err == nil {
			break
		}
		if tries > 100 {
			t.Fatalf("prefetch never converged under fault storm: %v (stats %+v, injector %v)",
				err, mt.Resilience(), inj.Counts())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if pvm.PresentPages() != desc.Alloc.Pages() {
		t.Fatalf("present %d of %d pages", pvm.PresentPages(), desc.Alloc.Pages())
	}
	st := mt.Resilience()
	if st.Retries == 0 && st.Reconnects == 0 {
		t.Fatalf("storm exercised no resilience: %+v (injector %v)", st, inj.Counts())
	}
	t.Logf("storm: %+v, injector %v", st, inj.Counts())
	verifyIdentical(t, pvm, src, map[pagestore.PFN]bool{33: true})
	if got, _ := pvm.Read(33); !bytes.Equal(got, local) {
		t.Fatal("fault storm clobbered the locally written page")
	}
}

// TestMemtapReportsDegraded: when the memory server is gone long enough
// for the breaker to open, the memtap flags the VM degraded and wraps
// fault errors in ErrDegraded so the agent can promote instead of wedge.
func TestMemtapReportsDegraded(t *testing.T) {
	rb, _ := newRestartableBackend(t, 63, 1*units.MiB)
	cfg := fastCfg()
	cfg.MaxRetries = 3
	cfg.BreakerThreshold = 2
	cfg.DialTimeout = 200 * time.Millisecond
	rc, err := memserver.DialResilient(rb.addr, secret, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mt := NewWithClient(63, rc)
	defer mt.Close()
	if mt.Degraded() {
		t.Fatal("healthy memtap reports degraded")
	}

	rb.kill()
	_, err = mt.FetchPage(63, 0)
	if err == nil {
		t.Fatal("FetchPage succeeded against a dead server")
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded after breaker opened, got %v", err)
	}
	if !mt.Degraded() {
		t.Fatal("memtap not degraded after breaker opened")
	}
	// Fail-fast while open.
	if _, err := mt.FetchPage(63, 1); !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded while open, got %v", err)
	}

	// Recovery: server returns, cooldown passes, probe closes breaker.
	if err := rb.restart(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(cfg.BreakerCooldown + 10*time.Millisecond)
	if _, err := mt.FetchPage(63, 0); err != nil {
		t.Fatalf("FetchPage after recovery: %v", err)
	}
	if mt.Degraded() {
		t.Fatal("memtap still degraded after recovery")
	}
}

// TestNonResilientClientNeverDegraded: Degraded is meaningful only for
// breaker-bearing clients.
func TestNonResilientClientNeverDegraded(t *testing.T) {
	src := pagestore.NewImage(1 * units.MiB)
	mt := NewWithClient(1, &stubClient{src: src})
	if mt.Degraded() {
		t.Fatal("stub-backed memtap reports degraded")
	}
	if st := mt.Resilience(); st != (memserver.ResilienceStats{}) {
		t.Fatalf("stub-backed memtap has resilience stats: %+v", st)
	}
}
