package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

type echoArgs struct {
	Msg string `json:"msg"`
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer(t.Logf)
	s.Handle("echo", func(params json.RawMessage) (any, error) {
		var a echoArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		return a.Msg, nil
	})
	s.Handle("fail", func(json.RawMessage) (any, error) {
		return nil, errors.New("intentional failure")
	})
	s.Handle("nilresult", func(json.RawMessage) (any, error) {
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", echoArgs{Msg: "hello"}, &out); err != nil {
		t.Fatal(err)
	}
	if out != "hello" {
		t.Fatalf("echo = %q", out)
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Method != "fail" {
		t.Fatalf("method = %q", re.Method)
	}
	// The connection survives remote errors.
	var out string
	if err := c.Call("echo", echoArgs{Msg: "still alive"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("nope", nil, nil); err == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestNilParamsAndResult(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("nilresult", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			var out string
			if err := c.Call("echo", echoArgs{Msg: want}, &out); err != nil {
				errs <- err
				return
			}
			if out != want {
				errs <- fmt.Errorf("got %q want %q", out, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr := startServer(t)
	for i := 0; i < 5; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		var out string
		if err := c.Call("echo", echoArgs{Msg: "x"}, &out); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	s, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", echoArgs{Msg: "x"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", echoArgs{Msg: "y"}, &out); err == nil {
		t.Fatal("call succeeded after server close")
	}
	// Closing twice is safe.
	s.Close()
}
