// Package wire is the small RPC layer the cluster manager and host agents
// speak (§4.1: "It provides an RPC interface that clients use to create
// and manage VMs"). Messages are length-prefixed JSON frames over TCP:
// simple to debug, no external dependencies, and sufficient for control
// traffic (bulk data rides the memory-server protocol instead).
//
// The framing is built for the measured path, not just the debugger:
// each frame is encoded straight into a pooled buffer behind its own
// length header and leaves in a single Write (header + body together,
// so a control round trip costs one segment each way instead of
// tangling a 4-byte header write with Nagle/delayed-ACK), and receive
// buffers are pooled too. Buffers that ballooned for a one-off
// migration-snapshot payload are dropped rather than pinned in the
// pool. See PERFORMANCE.md for how the control path is measured.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds one control frame. Full-migration snapshots travel in
// RPC payloads during host-to-host migration, so the ceiling is generous.
const maxFrame = 1 << 30

// retainFrame is the largest buffer the frame pools keep. Control
// frames are tiny; the occasional migration payload may grow a buffer
// to hundreds of megabytes, and returning that to the pool would pin it
// for the life of the process.
const retainFrame = 1 << 20

type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

type response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// frameBuf is a reusable encode buffer with a JSON encoder bound to it.
type frameBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var framePool = sync.Pool{New: func() any {
	fb := &frameBuf{}
	fb.enc = json.NewEncoder(&fb.buf)
	return fb
}}

var zeroHdr = []byte{0, 0, 0, 0}

// writeFrame encodes v directly into a pooled buffer behind a length
// placeholder, patches the length, and sends header and body in one
// Write. (The encoder's trailing newline is counted in the frame and
// skipped by json's whitespace handling on the far side.)
func writeFrame(w io.Writer, v any) error {
	fb := framePool.Get().(*frameBuf)
	fb.buf.Reset()
	fb.buf.Write(zeroHdr)
	err := fb.enc.Encode(v)
	if err == nil {
		b := fb.buf.Bytes()
		if len(b)-4 > maxFrame {
			err = fmt.Errorf("wire: frame of %d bytes exceeds limit", len(b)-4)
		} else {
			binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
			_, err = w.Write(b)
		}
	}
	if fb.buf.Cap() <= retainFrame {
		framePool.Put(fb)
	}
	return err
}

var readPool = sync.Pool{New: func() any { return new([]byte) }}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	bp := readPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	buf := (*bp)[:n]
	_, err := io.ReadFull(r, buf)
	if err == nil {
		// Unmarshal copies what it keeps (json.RawMessage included), so
		// the pooled buffer is free for reuse when this returns.
		err = json.Unmarshal(buf, v)
	}
	if cap(*bp) <= retainFrame {
		readPool.Put(bp)
	}
	return err
}

// Handler serves one RPC method. Params arrive as raw JSON; the returned
// value is marshalled as the result.
type Handler func(params json.RawMessage) (any, error)

// Server dispatches RPC requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	logf     func(string, ...any)
}

// NewServer returns an empty RPC server. logf may be nil.
func NewServer(logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
		logf:     logf,
	}
}

// Handle registers a handler for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen starts accepting connections on addr and returns the bound
// address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr(), nil
}

// Close stops the listener and open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.RLock()
			closed := s.closed
			s.mu.RUnlock()
			if !closed {
				s.logf("wire: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		resp := response{ID: req.ID}
		if !ok {
			resp.Error = fmt.Sprintf("unknown method %q", req.Method)
		} else if result, err := h(req.Params); err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			data, err := json.Marshal(result)
			if err != nil {
				resp.Error = fmt.Sprintf("marshal result: %v", err)
			} else {
				resp.Result = data
			}
		}
		if err := writeFrame(conn, &resp); err != nil {
			s.logf("wire: write response: %v", err)
			return
		}
	}
}

// Client is an RPC connection. Calls are serialised; it is safe for
// concurrent use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	next uint64
}

// Dial connects to an RPC server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call invokes method with params, decoding the result into out (which
// may be nil to discard it). Remote errors come back as *RemoteError.
func (c *Client) Call(method string, params, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req := request{ID: c.next, Method: method}
	if params != nil {
		data, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: marshal params: %w", err)
		}
		req.Params = data
	}
	if err := writeFrame(c.conn, &req); err != nil {
		return err
	}
	var resp response
	if err := readFrame(c.conn, &resp); err != nil {
		return err
	}
	if resp.ID != req.ID {
		return fmt.Errorf("wire: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return &RemoteError{Method: method, Msg: resp.Error}
	}
	if out != nil && resp.Result != nil {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// RemoteError is an error reported by the RPC peer.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string { return fmt.Sprintf("wire: %s: %s", e.Method, e.Msg) }
