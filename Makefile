GO ?= go

.PHONY: all build test race vet check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite; the resilience and fault-injection
# tests exercise real sockets and concurrent retry paths, so -race is the
# mode that matters for them.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: vet + race tests.
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
