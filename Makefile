GO ?= go

.PHONY: all build test race vet lint check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite; the resilience and fault-injection
# tests exercise real sockets and concurrent retry paths, so -race is the
# mode that matters for them. The cluster-day experiment tests exceed
# go test's default 10m package timeout under the race detector.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# lint fails if any file needs gofmt, then vets with test files
# included (the stress/fuzz suites are themselves deliverables here).
# gofmt -l prints the offending files, so the CI log names them.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet -tests=true ./...

# check is the CI gate: lint + race tests.
check: lint race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
