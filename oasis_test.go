package oasis_test

// Public-API tests: the same surface examples and downstream users see.

import (
	"bytes"
	"testing"
	"time"

	"oasis"
)

func TestSimulateHeadlineResult(t *testing.T) {
	cfg := oasis.DefaultSimConfig()
	cfg.Cluster.Policy = oasis.FulltoPartial
	cfg.TraceSeed = 42
	cfg.Cluster.Seed = 42
	res, err := oasis.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingsPct < 20 || res.SavingsPct > 32 {
		t.Errorf("weekday FulltoPartial savings = %.1f%%, want ~25%%", res.SavingsPct)
	}
	if res.BaselineJoules <= res.OasisJoules {
		t.Error("consolidation used more energy than the baseline")
	}
}

func TestSimulateNAggregates(t *testing.T) {
	cfg := oasis.DefaultSimConfig()
	sum, err := oasis.SimulateN(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Savings.N() != 2 {
		t.Fatalf("aggregated %d runs", sum.Savings.N())
	}
}

func TestMigrationModels(t *testing.T) {
	micro := oasis.MicroBenchModel()
	full := micro.FullMigration(4*oasis.GiB, false)
	if s := full.Latency.Seconds(); s < 39 || s > 43 {
		t.Errorf("micro full migration = %.1fs", s)
	}
	rack := oasis.ClusterModel()
	full = rack.FullMigration(4*oasis.GiB, false)
	if s := full.Latency.Seconds(); s < 9 || s > 11 {
		t.Errorf("rack full migration = %.1fs", s)
	}
}

func TestPowerProfiles(t *testing.T) {
	p := oasis.DefaultPowerProfile()
	if p.SleepW+p.MemServerW >= p.IdleW {
		t.Error("sleeping host + memory server should undercut an idle host")
	}
	lin := oasis.LinearPowerProfile()
	if lin.VMHostingW != 0 {
		t.Error("linear profile still has a flat hosting rate")
	}
}

// TestFunctionalRoundTrip drives the public functional layer: a memory
// server, an uploaded image, a partial VM faulting through a memtap, and
// a differential update.
func TestFunctionalRoundTrip(t *testing.T) {
	secret := []byte("public-api-test")
	srv := oasis.NewMemServer(secret, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	alloc := 8 * oasis.MiB
	im := oasis.NewImage(alloc)
	payload := bytes.Repeat([]byte{0x5C}, int(oasis.PageSize))
	if err := im.Write(100, payload); err != nil {
		t.Fatal(err)
	}
	snap, _, err := oasis.EncodeImage(im)
	if err != nil {
		t.Fatal(err)
	}
	client, err := oasis.DialMemServer(addr.String(), secret, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.PutImage(77, alloc, snap); err != nil {
		t.Fatal(err)
	}

	mt, err := oasis.NewMemtap(77, addr.String(), secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	desc := oasis.NewVMDescriptor(77, "api-test", alloc, 1)
	pvm, err := oasis.NewPartialVM(desc, mt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pvm.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("faulted page mismatch")
	}
	if mt.Faults() != 1 {
		t.Fatalf("faults = %d", mt.Faults())
	}

	// Differential update via the public API.
	epoch := im.Epoch() - 1
	if err := im.Write(101, payload); err != nil {
		t.Fatal(err)
	}
	diff, n, err := oasis.EncodeImageDiff(im, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty diff")
	}
	if err := client.PutDiff(77, diff); err != nil {
		t.Fatal(err)
	}
}

func TestTraceGeneration(t *testing.T) {
	set := oasis.GenerateTrace(oasis.Weekday, 300, 9)
	if len(set.Days) != 300 {
		t.Fatalf("generated %d days", len(set.Days))
	}
	peak, _ := set.PeakActive()
	if peak == 0 || peak > 300 {
		t.Fatalf("peak = %d", peak)
	}
	ws := oasis.SampleWorkingSet(5)
	if ws < 16*oasis.MiB || ws > oasis.GiB {
		t.Fatalf("working set = %v", ws)
	}
}

func TestClusterConstruction(t *testing.T) {
	s := oasis.NewSimulator()
	cfg := oasis.DefaultClusterConfig()
	cfg.HomeHosts = 2
	cfg.ConsHosts = 1
	cfg.VMsPerHost = 4
	cl, err := oasis.NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.VMs) != 8 || len(cl.Hosts) != 3 {
		t.Fatalf("cluster sized %d VMs / %d hosts", len(cl.VMs), len(cl.Hosts))
	}
	if cl.PoweredHosts() == 0 {
		t.Fatal("no powered hosts after construction")
	}
}
