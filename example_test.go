package oasis_test

import (
	"fmt"
	"time"

	"oasis"
)

// ExampleSimulate runs the paper's headline experiment: a simulated
// weekday on the 30+4 host VDI farm under the FulltoPartial policy.
func ExampleSimulate() {
	cfg := oasis.DefaultSimConfig()
	cfg.Cluster.Policy = oasis.FulltoPartial
	cfg.TraceSeed = 42
	cfg.Cluster.Seed = 42
	res, err := oasis.Simulate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("savings between 20%% and 32%%: %v\n", res.SavingsPct > 20 && res.SavingsPct < 32)
	// Output:
	// savings between 20% and 32%: true
}

// ExampleMicroBenchModel reproduces the Figure 5 full-migration latency.
func ExampleMicroBenchModel() {
	m := oasis.MicroBenchModel()
	op := m.FullMigration(4*oasis.GiB, false)
	fmt.Printf("full migration of a 4 GiB VM: %.0f s\n", op.Latency.Seconds())
	// Output:
	// full migration of a 4 GiB VM: 41 s
}

// ExampleNewMemServer shows the functional layer: upload a VM image to a
// memory page server and fault a page back through a memtap.
func ExampleNewMemServer() {
	secret := []byte("example")
	srv := oasis.NewMemServer(secret, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()

	im := oasis.NewImage(4 * oasis.MiB)
	page := make([]byte, oasis.PageSize)
	page[0] = 42
	if err := im.Write(100, page); err != nil {
		fmt.Println(err)
		return
	}
	snap, _, err := oasis.EncodeImage(im)
	if err != nil {
		fmt.Println(err)
		return
	}
	client, err := oasis.DialMemServer(addr.String(), secret, 2*time.Second)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer client.Close()
	if err := client.PutImage(1, 4*oasis.MiB, snap); err != nil {
		fmt.Println(err)
		return
	}

	mt, err := oasis.NewMemtap(1, addr.String(), secret)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer mt.Close()
	pvm, err := oasis.NewPartialVM(oasis.NewVMDescriptor(1, "demo", 4*oasis.MiB, 1), mt)
	if err != nil {
		fmt.Println(err)
		return
	}
	got, err := pvm.Read(100)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("faulted page byte: %d after %d fault(s)\n", got[0], mt.Faults())
	// Output:
	// faulted page byte: 42 after 1 fault(s)
}
