package oasis_test

import (
	"fmt"
	"time"

	"oasis"
)

// ExampleSimulate runs the paper's headline experiment: a simulated
// weekday on the 30+4 host VDI farm under the FulltoPartial policy.
func ExampleSimulate() {
	cfg := oasis.DefaultSimConfig()
	cfg.Cluster.Policy = oasis.FulltoPartial
	cfg.TraceSeed = 42
	cfg.Cluster.Seed = 42
	res, err := oasis.Simulate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("savings between 20%% and 32%%: %v\n", res.SavingsPct > 20 && res.SavingsPct < 32)
	// Output:
	// savings between 20% and 32%: true
}

// ExampleMicroBenchModel reproduces the Figure 5 full-migration latency.
func ExampleMicroBenchModel() {
	m := oasis.MicroBenchModel()
	op := m.FullMigration(4*oasis.GiB, false)
	fmt.Printf("full migration of a 4 GiB VM: %.0f s\n", op.Latency.Seconds())
	// Output:
	// full migration of a 4 GiB VM: 41 s
}

// ExampleNewMemServer shows the functional layer: upload a VM image to a
// memory page server and fault a page back through a memtap.
func ExampleNewMemServer() {
	secret := []byte("example")
	srv := oasis.NewMemServer(secret, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()

	im := oasis.NewImage(4 * oasis.MiB)
	page := make([]byte, oasis.PageSize)
	page[0] = 42
	if err := im.Write(100, page); err != nil {
		fmt.Println(err)
		return
	}
	snap, _, err := oasis.EncodeImage(im)
	if err != nil {
		fmt.Println(err)
		return
	}
	client, err := oasis.Dial(addr.String(), secret, oasis.WithTimeout(2*time.Second))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer client.Close()
	if err := client.PutImage(1, 4*oasis.MiB, snap); err != nil {
		fmt.Println(err)
		return
	}

	mt, err := oasis.NewMemtap(1, addr.String(), secret)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer mt.Close()
	pvm, err := oasis.NewPartialVM(oasis.NewVMDescriptor(1, "demo", 4*oasis.MiB, 1), mt)
	if err != nil {
		fmt.Println(err)
		return
	}
	got, err := pvm.Read(100)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("faulted page byte: %d after %d fault(s)\n", got[0], mt.Faults())
	// Output:
	// faulted page byte: 42 after 1 fault(s)
}

// ExampleDial shows the one dial entry point: the options pick the
// transport shape — here a pool of resilient connections — and the same
// MemConn calls work whatever shape was selected.
func ExampleDial() {
	secret := []byte("example")
	srv := oasis.NewMemServer(secret, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()

	conn, err := oasis.Dial(addr.String(), secret,
		oasis.WithResilience(oasis.ResilienceConfig{Name: "example"}),
		oasis.WithPool(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer conn.Close()

	im := oasis.NewImage(4 * oasis.MiB)
	page := make([]byte, oasis.PageSize)
	page[0] = 7
	if err := im.Write(5, page); err != nil {
		fmt.Println(err)
		return
	}
	snap, _, err := oasis.EncodeImage(im)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := conn.PutImage(9, 4*oasis.MiB, snap); err != nil {
		fmt.Println(err)
		return
	}
	got, err := conn.GetPage(9, 5)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("page byte through the pooled conn: %d\n", got[0])
	// Output:
	// page byte through the pooled conn: 7
}

// ExampleDial_shardFabric uploads through a sharded, replicated
// memory-server fabric and reads back after a backend outage: with
// 2-way replication, killing one of three backends costs failover
// latency, not failed reads.
func ExampleDial_shardFabric() {
	secret := []byte("example")
	backends := make([]string, 3)
	servers := make([]*oasis.MemServer, 3)
	for i := range servers {
		servers[i] = oasis.NewMemServer(secret, nil)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			fmt.Println(err)
			return
		}
		defer servers[i].Close()
		backends[i] = addr.String()
	}

	fabric, err := oasis.Dial("", secret,
		oasis.WithBackends(backends...),
		oasis.WithReplicas(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer fabric.Close()

	im := oasis.NewImage(8 * oasis.MiB)
	page := make([]byte, oasis.PageSize)
	page[0] = 42
	if err := im.Write(321, page); err != nil {
		fmt.Println(err)
		return
	}
	snap, _, err := oasis.EncodeImage(im)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := fabric.PutImage(3, 8*oasis.MiB, snap); err != nil {
		fmt.Println(err)
		return
	}

	servers[1].Close() // one shard dies
	got, err := fabric.GetPage(3, 321)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("page byte after a shard outage: %d\n", got[0])
	// Output:
	// page byte after a shard outage: 42
}
