// Command tracegen generates and inspects synthetic user-activity traces
// in the format the §5 evaluation consumes. Generation streams: each
// user-day is synthesised from (seed, user index) on demand and written
// out, so corpus size is bounded by the output file, not memory, and the
// output is bit-identical to the materializing API at the same seed.
//
// Examples:
//
//	tracegen -n 900 -kind weekday > weekday.trace
//	tracegen -n 1000000 -kind weekday > million.trace
//	tracegen -inspect weekday.trace
//	tracegen -user 418 -seed 42            # just user 418's day
//	tracegen -n 900 -rotate -96 > utc-8.trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"oasis"
	"oasis/internal/rng"
	"oasis/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 900, "user-days to generate")
		kind    = flag.String("kind", "weekday", "weekday|weekend")
		seed    = flag.Uint64("seed", 1, "random seed")
		user    = flag.Int("user", -1, "generate only this user's day (reproducible independently of every other user)")
		rotate  = flag.Int("rotate", 0, "rotate each day by this many 5-minute intervals, wrapping midnight (timezone shift; +96 = UTC+8)")
		inspect = flag.String("inspect", "", "trace file to summarise instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		set, err := trace.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		summarise(set)
		return
	}

	k := oasis.Weekday
	if strings.ToLower(*kind) == "weekend" {
		k = oasis.Weekend
	}
	// The corpus base seed is drawn the way the materializing generator
	// draws it, so streamed output matches oasis.GenerateTrace(k, n, seed)
	// byte for byte.
	base := rng.New(*seed).Uint64()

	if *user >= 0 {
		// One user's day as a valid single-day trace file.
		d := oasis.TraceUserDay(k, base, uint64(*user)).Rotate(*rotate)
		w := bufio.NewWriter(os.Stdout)
		fmt.Fprintf(w, "# oasis-trace v1 days=1\n")
		writeDay(w, &d)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		return
	}

	if err := writeStream(os.Stdout, oasis.StreamTrace(k, *n, base), *n, *rotate); err != nil {
		log.Fatal(err)
	}
}

// writeStream serialises a streamed corpus without ever materializing
// it: header, then one line per user-day as each is generated.
func writeStream(out io.Writer, s *oasis.TraceStream, n, rotate int) error {
	w := bufio.NewWriter(out)
	if _, err := fmt.Fprintf(w, "# oasis-trace v1 days=%d\n", n); err != nil {
		return err
	}
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		if rotate != 0 {
			d = d.Rotate(rotate)
		}
		if err := writeDay(w, &d); err != nil {
			return err
		}
	}
	return w.Flush()
}

// writeDay emits one user-day in the interchange format ("W 0101...").
func writeDay(w *bufio.Writer, d *oasis.UserDay) error {
	if d.Kind == oasis.Weekend {
		w.WriteString("E ")
	} else {
		w.WriteString("W ")
	}
	for _, a := range d.Active {
		if a {
			w.WriteByte('1')
		} else {
			w.WriteByte('0')
		}
	}
	return w.WriteByte('\n')
}

func summarise(set *trace.Set) {
	peak, iv := set.PeakActive()
	fmt.Printf("user-days: %d\n", len(set.Days))
	fmt.Printf("peak simultaneous active: %d (%.0f%%) at %02d:%02d\n",
		peak, 100*float64(peak)/float64(len(set.Days)),
		iv*trace.IntervalMinutes/60, iv*trace.IntervalMinutes%60)
	fmt.Printf("P(all 30 VMs of a host idle): %.1f%%\n", 100*set.FracAllIdle(30))
	counts := set.ActiveCount()
	fmt.Printf("%-6s %s\n", "hour", "active users")
	for h := 0; h < 24; h++ {
		sum := 0
		for i := h * 12; i < (h+1)*12; i++ {
			sum += counts[i]
		}
		avg := float64(sum) / 12
		bar := strings.Repeat("#", int(avg/float64(len(set.Days))*120))
		fmt.Printf("%-6d %5.0f %s\n", h, avg, bar)
	}
}
