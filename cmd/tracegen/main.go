// Command tracegen generates and inspects synthetic user-activity traces
// in the format the §5 evaluation consumes.
//
// Examples:
//
//	tracegen -n 900 -kind weekday > weekday.trace
//	tracegen -inspect weekday.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"oasis"
	"oasis/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 900, "user-days to generate")
		kind    = flag.String("kind", "weekday", "weekday|weekend")
		seed    = flag.Uint64("seed", 1, "random seed")
		inspect = flag.String("inspect", "", "trace file to summarise instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		set, err := trace.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		summarise(set)
		return
	}

	k := oasis.Weekday
	if strings.ToLower(*kind) == "weekend" {
		k = oasis.Weekend
	}
	set := oasis.GenerateTrace(k, *n, *seed)
	if err := set.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func summarise(set *trace.Set) {
	peak, iv := set.PeakActive()
	fmt.Printf("user-days: %d\n", len(set.Days))
	fmt.Printf("peak simultaneous active: %d (%.0f%%) at %02d:%02d\n",
		peak, 100*float64(peak)/float64(len(set.Days)),
		iv*trace.IntervalMinutes/60, iv*trace.IntervalMinutes%60)
	fmt.Printf("P(all 30 VMs of a host idle): %.1f%%\n", 100*set.FracAllIdle(30))
	counts := set.ActiveCount()
	fmt.Printf("%-6s %s\n", "hour", "active users")
	for h := 0; h < 24; h++ {
		sum := 0
		for i := h * 12; i < (h+1)*12; i++ {
			sum += counts[i]
		}
		avg := float64(sum) / 12
		bar := strings.Repeat("#", int(avg/float64(len(set.Days))*120))
		fmt.Printf("%-6d %5.0f %s\n", h, avg, bar)
	}
}
