// Command memserverd runs a standalone Oasis memory page server (§4.3):
// the daemon that serves a sleeping host's VM memory pages over TCP.
//
// Example:
//
//	memserverd -listen 127.0.0.1:7070 -secret changeme
//
// Pair it with memtapctl to upload an image and fault pages back.
//
// For resilience testing, -chaos injects transport faults into every
// accepted connection and -chaos-crash periodically kills and restarts
// the daemon (keeping its image store, like a restart from the persist
// dir), so clients' retry/reconnect/breaker paths can be exercised
// against a real server:
//
//	memserverd -listen 127.0.0.1:7070 -secret changeme \
//	    -chaos read=0.05,write=0.02,partial=0.02,latency=5ms:0.2 \
//	    -chaos-crash 30s -chaos-downtime 2s
package main

import (
	"crypto/tls"
	"encoding/pem"
	"flag"
	"log"
	"net"
	"os"
	"time"

	"oasis/internal/faultinject"
	"oasis/internal/memserver"
	"oasis/internal/pagestore"
	"oasis/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		secret  = flag.String("secret", "", "shared authentication secret (required)")
		useTLS  = flag.Bool("tls", false, "serve TLS with a fresh self-signed certificate (§4.3 Security)")
		certOut = flag.String("cert-out", "", "with -tls: also write the PEM certificate here for clients")
		persist = flag.String("persist", "", "mirror images to this directory and reload them at startup (the shared-drive durability of §4.3)")

		chaosSpec  = flag.String("chaos", "", "inject transport faults into accepted connections, e.g. read=0.05,write=0.02,partial=0.02,latency=5ms:0.2,stall=200ms:0.01")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "seed for the fault injector (deterministic chaos)")
		chaosCrash = flag.Duration("chaos-crash", 0, "kill and restart the daemon this often (0 disables); images survive the restart")
		chaosDown  = flag.Duration("chaos-downtime", 2*time.Second, "with -chaos-crash: how long the daemon stays down per crash")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /traces and /debug/pprof on this address (empty disables); see OBSERVABILITY.md")
	)
	flag.Parse()
	if *secret == "" {
		log.Fatal("memserverd: -secret is required; clients authenticate with HMAC-SHA256")
	}

	if *metricsAddr != "" {
		ts, err := telemetry.Serve(*metricsAddr, nil, nil)
		if err != nil {
			log.Fatalf("memserverd: -metrics-addr: %v", err)
		}
		log.Printf("memserverd: telemetry on http://%s/metrics", ts.Addr())
	}

	var inj *faultinject.Injector
	if *chaosSpec != "" {
		cfg, err := faultinject.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatalf("memserverd: -chaos: %v", err)
		}
		inj = faultinject.New(*chaosSeed, cfg)
		log.Printf("memserverd: chaos enabled: %s (seed %d)", *chaosSpec, *chaosSeed)
	}

	var cert *tls.Certificate
	if *useTLS {
		host, _, err := net.SplitHostPort(*listen)
		if err != nil {
			log.Fatal(err)
		}
		c, _, err := memserver.GenerateCert([]string{host})
		if err != nil {
			log.Fatal(err)
		}
		if *certOut != "" {
			pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: c.Certificate[0]})
			if err := os.WriteFile(*certOut, pemBytes, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("memserverd: wrote certificate to %s", *certOut)
		}
		cert = &c
	}

	// start builds a server over the shared store and brings it up. The
	// first boot loads the persist dir; chaos restarts reuse the same
	// store, exactly like a daemon restarting from its persist dir.
	store := pagestore.NewStore()
	start := func(firstBoot bool) *memserver.Server {
		s := memserver.NewServerWithStore([]byte(*secret), store, log.Printf)
		if *persist != "" {
			if err := s.SetPersistDir(*persist); err != nil {
				log.Fatal(err)
			}
			if firstBoot {
				n, err := s.LoadPersisted()
				if err != nil {
					log.Fatal(err)
				}
				log.Printf("memserverd: restored %d VM image(s) from %s", n, *persist)
			}
		}
		if inj != nil {
			s.SetConnWrapper(inj.WrapConn)
		}
		var addr net.Addr
		var err error
		if cert != nil {
			addr, err = s.ListenTLS(*listen, *cert)
		} else {
			addr, err = s.Listen(*listen)
		}
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("memserverd: serving on %v", addr)
		return s
	}
	srv := start(true)

	if *chaosCrash > 0 {
		go faultinject.CrashLoop(nil, *chaosCrash, *chaosDown,
			func() {
				log.Printf("memserverd: CHAOS: crashing (down for %v)", *chaosDown)
				srv.Close()
			},
			func() {
				srv = start(false)
				log.Printf("memserverd: CHAOS: restarted")
			})
	}
	select {}
}
