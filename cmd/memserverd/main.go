// Command memserverd runs a standalone Oasis memory page server (§4.3):
// the daemon that serves a sleeping host's VM memory pages over TCP.
//
// Example:
//
//	memserverd -listen 127.0.0.1:7070 -secret changeme
//
// Pair it with memtapctl to upload an image and fault pages back.
package main

import (
	"encoding/pem"
	"flag"
	"log"
	"net"
	"os"

	"oasis/internal/memserver"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		secret  = flag.String("secret", "", "shared authentication secret (required)")
		useTLS  = flag.Bool("tls", false, "serve TLS with a fresh self-signed certificate (§4.3 Security)")
		certOut = flag.String("cert-out", "", "with -tls: also write the PEM certificate here for clients")
		persist = flag.String("persist", "", "mirror images to this directory and reload them at startup (the shared-drive durability of §4.3)")
	)
	flag.Parse()
	if *secret == "" {
		log.Fatal("memserverd: -secret is required; clients authenticate with HMAC-SHA256")
	}
	s := memserver.NewServer([]byte(*secret), log.Printf)
	if *persist != "" {
		if err := s.SetPersistDir(*persist); err != nil {
			log.Fatal(err)
		}
		n, err := s.LoadPersisted()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("memserverd: restored %d VM image(s) from %s", n, *persist)
	}
	if !*useTLS {
		addr, err := s.Listen(*listen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("memserverd: serving on %v", addr)
		select {}
	}

	host, _, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatal(err)
	}
	cert, _, err := memserver.GenerateCert([]string{host})
	if err != nil {
		log.Fatal(err)
	}
	if *certOut != "" {
		pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Certificate[0]})
		if err := os.WriteFile(*certOut, pemBytes, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("memserverd: wrote certificate to %s", *certOut)
	}
	addr, err := s.ListenTLS(*listen, cert)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("memserverd: serving TLS on %v", addr)
	select {}
}
