// Command memtapctl exercises a running memserverd the way a host agent
// and memtap do: it uploads a synthetic VM memory image, creates a partial
// VM from its descriptor, faults pages back on demand, pushes a
// differential update, and reports round-trip statistics.
//
// Example:
//
//	memserverd -listen 127.0.0.1:7070 -secret changeme &
//	memtapctl  -server 127.0.0.1:7070 -secret changeme -mem 64MiB -touch 2000
//
// It doubles as the fabric admin client for a running oasis-agentd:
// -agent plus one of -fabric-add / -fabric-remove / -fabric-status
// applies a live shard-fabric membership change (or inspects the
// fabric) through the agent's RPC surface instead of running the demo:
//
//	memtapctl -agent 127.0.0.1:8100 -fabric-add    127.0.0.1:7073 -fabric-wait
//	memtapctl -agent 127.0.0.1:8100 -fabric-remove 127.0.0.1:7071 -fabric-wait
//	memtapctl -agent 127.0.0.1:8100 -fabric-status
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"oasis"
	"oasis/internal/agent"
	"oasis/internal/rng"
	"oasis/internal/wire"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:7070", "memserverd address (ignored when -backends selects a shard fabric)")
		secret   = flag.String("secret", "", "shared authentication secret (required)")
		memMiB   = flag.Int("mem", 64, "VM memory size in MiB")
		touched  = flag.Int("touch", 1000, "pages to fault in on demand")
		vmid     = flag.Uint("vmid", 1234, "VM identifier")
		seed     = flag.Uint64("seed", 1, "seed for synthetic page contents")
		prefetch = flag.Bool("prefetch", false, "after touching, prefetch the remaining state (partial→full conversion, §4.4.4)")
		retries  = flag.Int("retries", 8, "page-fetch attempts before the memtap reports the fault (riding out chaos downtime)")

		agentAddr    = flag.String("agent", "", "oasis-agentd RPC address for fabric admin commands (enables -fabric-*)")
		fabricAdd    = flag.String("fabric-add", "", "add this memory-server backend to the agent's shard fabric and rebalance")
		fabricRemove = flag.String("fabric-remove", "", "drain this backend out of the agent's shard fabric")
		fabricStatus = flag.Bool("fabric-status", false, "print the agent's fabric status (ring epoch, backend health, rebalance progress)")
		fabricWait   = flag.Bool("fabric-wait", false, "block until the membership change's rebalance settles")
	)
	// -pool, -prefetch-streams, -upload-streams, -backends and -replicas
	// come from the shared transport binding all the daemons use.
	transport := oasis.Transport{PoolSize: 1, PrefetchStreams: 1, UploadStreams: 1}
	oasis.BindTransportFlags(flag.CommandLine, &transport)
	flag.Parse()
	if *agentAddr != "" {
		fabricAdmin(*agentAddr, *fabricAdd, *fabricRemove, *fabricStatus, *fabricWait)
		return
	}
	if *fabricAdd != "" || *fabricRemove != "" || *fabricStatus {
		log.Fatal("memtapctl: -fabric-* commands need -agent <rpc-addr>")
	}
	if *secret == "" {
		log.Fatal("memtapctl: -secret is required")
	}
	alloc := oasis.Bytes(*memMiB) * oasis.MiB
	id := oasis.VMID(*vmid)

	// Build a synthetic "home host" memory image: sparse pages with
	// recognisable contents.
	r := rng.New(*seed)
	im := oasis.NewImage(alloc)
	pages := im.NumPages()
	for pfn := int64(0); pfn < pages; pfn++ {
		if r.Bool(0.5) {
			continue // leave half the pages zero, like real guests
		}
		page := bytes.Repeat([]byte{byte(pfn%251 + 1)}, int(oasis.PageSize))
		if err := im.Write(oasis.PFN(pfn), page); err != nil {
			log.Fatal(err)
		}
	}

	// A generous breaker budget: this tool is a connectivity demo, so it
	// should keep retrying through injected storms rather than declare
	// the server down the way an agent's memtap would. Name labels each
	// client's oasis_client_* metrics in the shared registry.
	rcfg := func(name string, jitter uint64) oasis.ResilienceConfig {
		return oasis.ResilienceConfig{
			Name:             name,
			MaxRetries:       *retries,
			MutatingRetries:  *retries,
			BreakerThreshold: 4 * *retries,
			JitterSeed:       jitter,
		}
	}

	// Upload the image (the host's pre-suspend upload, §4.3) through the
	// one Dial entry point: the options pick the transport shape — a bare
	// resilient client, a pool of -upload-streams connections, or the
	// sharded fabric when -backends is set — and the same MemConn calls
	// work against all of them; the server-side image is identical
	// either way.
	upOpts := []oasis.DialOption{oasis.WithResilience(rcfg("upload", *seed+1))}
	switch {
	case transport.Sharded():
		upOpts = append(upOpts,
			oasis.WithBackends(transport.Backends...),
			oasis.WithReplicas(transport.Replicas),
			oasis.WithPool(transport.UploadStreams))
	case transport.UploadStreams > 1:
		upOpts = append(upOpts, oasis.WithPool(transport.UploadStreams))
	}
	client, err := oasis.Dial(*server, []byte(*secret), upOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	snap, n, err := oasis.EncodeImageParallel(im, transport.UploadStreams)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := client.StreamImage(id, alloc, snap, oasis.UploadOptions{Streams: transport.UploadStreams}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded image: %d pages, %d bytes compressed (%.1fx) in %v (%d upload streams)\n",
		n, len(snap), float64(n)*float64(oasis.PageSize)/float64(len(snap)), time.Since(start), max(transport.UploadStreams, 1))

	// Create a partial VM from the descriptor and fault pages on demand
	// through a real memtap.
	desc := oasis.NewVMDescriptor(id, "memtapctl-demo", alloc, 1)
	mcfg := rcfg("memtap", *seed)
	mt, err := oasis.NewMemtapWithOptions(id, *server, []byte(*secret), oasis.MemtapOptions{
		Resilience:      &mcfg,
		PoolSize:        transport.PoolSize,
		PrefetchStreams: transport.PrefetchStreams,
		Backends:        transport.Backends,
		Replicas:        transport.Replicas,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mt.Close()
	pvm, err := oasis.NewPartialVM(desc, mt)
	if err != nil {
		log.Fatal(err)
	}
	nTouch := int64(*touched)
	if nTouch > pages {
		nTouch = pages
	}
	start = time.Now()
	// Page-table frames (pfn < PageTablePages) travel with the descriptor
	// and read back as fresh frames, not guest data — verify only pageable
	// memory.
	ptPages := desc.PageTablePages
	for i := int64(0); i < nTouch; i++ {
		pfn := oasis.PFN(ptPages + r.Int63n(pages-ptPages))
		want, err := im.Read(pfn)
		if err != nil {
			log.Fatal(err)
		}
		got, err := pvm.Read(pfn)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("page %d mismatch after on-demand fetch", pfn)
		}
	}
	fmt.Printf("touched %d pages: %d faults serviced, mean latency %v\n",
		nTouch, mt.Faults(), mt.MeanLatency())
	// The fault-path tracer records in this process (where the memtap
	// runs), so show a sample here — a memserverd /traces scrape is empty.
	fmt.Println("newest fault spans (stage split):")
	if err := oasis.WriteFaultTraces(os.Stdout, 3); err != nil {
		log.Fatal(err)
	}

	if *prefetch {
		start = time.Now()
		n, err := mt.PrefetchRemaining(pvm, 512)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prefetched %d remaining pages in %v; VM is now full (%d/%d present)\n",
			n, time.Since(start), pvm.PresentPages(), pages)
	}

	// Differential upload: dirty a few pages and push only the delta.
	epoch := im.NextEpoch()
	for i := 0; i < 16; i++ {
		pfn := oasis.PFN(r.Int63n(pages))
		if err := im.Write(pfn, bytes.Repeat([]byte{0xD1}, int(oasis.PageSize))); err != nil {
			log.Fatal(err)
		}
	}
	diff, dn, err := oasis.EncodeImageDiffParallel(im, epoch, transport.UploadStreams)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.StreamDiff(id, diff, oasis.UploadOptions{Streams: transport.UploadStreams}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("differential upload: %d dirty pages, %d bytes\n", dn, len(diff))

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d VMs, %d pages served (%v), %d pages uploaded\n",
		stats.VMs, stats.PagesServed, stats.BytesServed, stats.PagesUploaded)

	// Report what the fault path actually did (all zeros against a
	// healthy server) straight from the live registry — the same values
	// a -metrics-addr scrape would show, so the two cannot drift.
	fmt.Printf("resilience (oasis_client_*, degraded %v):\n", mt.Degraded())
	if err := oasis.WriteMetricsText(os.Stdout, "oasis_client_"); err != nil {
		log.Fatal(err)
	}
	if transport.Sharded() {
		fmt.Println("shard fabric (oasis_shard_*):")
		if err := oasis.WriteMetricsText(os.Stdout, "oasis_shard_"); err != nil {
			log.Fatal(err)
		}
	}
}

// fabricAdmin runs one fabric admin command against a live agent and
// exits: add/remove a backend (optionally waiting for the triggered
// rebalance to settle) or print the fabric status.
func fabricAdmin(agentAddr, add, remove string, status, wait bool) {
	if add != "" && remove != "" {
		log.Fatal("memtapctl: -fabric-add and -fabric-remove are mutually exclusive")
	}
	c, err := wire.Dial(agentAddr)
	if err != nil {
		log.Fatalf("memtapctl: dial agent: %v", err)
	}
	defer c.Close()
	switch {
	case add != "":
		if err := c.Call("Agent.FabricAddBackend", agent.FabricBackendArgs{Addr: add, Wait: wait}, nil); err != nil {
			log.Fatalf("memtapctl: fabric add %s: %v", add, err)
		}
		fmt.Printf("backend %s added (wait=%v)\n", add, wait)
	case remove != "":
		if err := c.Call("Agent.FabricRemoveBackend", agent.FabricBackendArgs{Addr: remove, Wait: wait}, nil); err != nil {
			log.Fatalf("memtapctl: fabric remove %s: %v", remove, err)
		}
		fmt.Printf("backend %s removed (wait=%v)\n", remove, wait)
	case status:
		var reply agent.FabricStatusReply
		if err := c.Call("Agent.FabricStatus", nil, &reply); err != nil {
			log.Fatalf("memtapctl: fabric status: %v", err)
		}
		out, err := json.MarshalIndent(reply, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	default:
		log.Fatal("memtapctl: -agent needs one of -fabric-add, -fabric-remove, -fabric-status")
	}
}
