// Command memtapctl exercises a running memserverd the way a host agent
// and memtap do: it uploads a synthetic VM memory image, creates a partial
// VM from its descriptor, faults pages back on demand, pushes a
// differential update, and reports round-trip statistics.
//
// Example:
//
//	memserverd -listen 127.0.0.1:7070 -secret changeme &
//	memtapctl  -server 127.0.0.1:7070 -secret changeme -mem 64MiB -touch 2000
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"oasis"
	"oasis/internal/rng"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:7070", "memserverd address")
		secret   = flag.String("secret", "", "shared authentication secret (required)")
		memMiB   = flag.Int("mem", 64, "VM memory size in MiB")
		touched  = flag.Int("touch", 1000, "pages to fault in on demand")
		vmid     = flag.Uint("vmid", 1234, "VM identifier")
		seed     = flag.Uint64("seed", 1, "seed for synthetic page contents")
		prefetch = flag.Bool("prefetch", false, "after touching, prefetch the remaining state (partial→full conversion, §4.4.4)")
	)
	flag.Parse()
	if *secret == "" {
		log.Fatal("memtapctl: -secret is required")
	}
	alloc := oasis.Bytes(*memMiB) * oasis.MiB
	id := oasis.VMID(*vmid)

	// Build a synthetic "home host" memory image: sparse pages with
	// recognisable contents.
	r := rng.New(*seed)
	im := oasis.NewImage(alloc)
	pages := im.NumPages()
	for pfn := int64(0); pfn < pages; pfn++ {
		if r.Bool(0.5) {
			continue // leave half the pages zero, like real guests
		}
		page := bytes.Repeat([]byte{byte(pfn%251 + 1)}, int(oasis.PageSize))
		if err := im.Write(oasis.PFN(pfn), page); err != nil {
			log.Fatal(err)
		}
	}

	// Upload the image (the host's pre-suspend upload, §4.3).
	client, err := oasis.DialMemServer(*server, []byte(*secret), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	snap, n, err := oasis.EncodeImage(im)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := client.PutImage(id, alloc, snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded image: %d pages, %d bytes compressed (%.1fx) in %v\n",
		n, len(snap), float64(n)*float64(oasis.PageSize)/float64(len(snap)), time.Since(start))

	// Create a partial VM from the descriptor and fault pages on demand
	// through a real memtap.
	desc := oasis.NewVMDescriptor(id, "memtapctl-demo", alloc, 1)
	mt, err := oasis.NewMemtap(id, *server, []byte(*secret))
	if err != nil {
		log.Fatal(err)
	}
	defer mt.Close()
	pvm, err := oasis.NewPartialVM(desc, mt)
	if err != nil {
		log.Fatal(err)
	}
	nTouch := int64(*touched)
	if nTouch > pages {
		nTouch = pages
	}
	start = time.Now()
	for i := int64(0); i < nTouch; i++ {
		pfn := oasis.PFN(r.Int63n(pages))
		want, err := im.Read(pfn)
		if err != nil {
			log.Fatal(err)
		}
		got, err := pvm.Read(pfn)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("page %d mismatch after on-demand fetch", pfn)
		}
	}
	fmt.Printf("touched %d pages: %d faults serviced, mean latency %v\n",
		nTouch, mt.Faults(), mt.MeanLatency())

	if *prefetch {
		start = time.Now()
		n, err := mt.PrefetchRemaining(pvm, 512)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prefetched %d remaining pages in %v; VM is now full (%d/%d present)\n",
			n, time.Since(start), pvm.PresentPages(), pages)
	}

	// Differential upload: dirty a few pages and push only the delta.
	epoch := im.NextEpoch()
	for i := 0; i < 16; i++ {
		pfn := oasis.PFN(r.Int63n(pages))
		if err := im.Write(pfn, bytes.Repeat([]byte{0xD1}, int(oasis.PageSize))); err != nil {
			log.Fatal(err)
		}
	}
	diff, dn, err := oasis.EncodeImageDiff(im, epoch)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.PutDiff(id, diff); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("differential upload: %d dirty pages, %d bytes\n", dn, len(diff))

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d VMs, %d pages served (%v), %d pages uploaded\n",
		stats.VMs, stats.PagesServed, stats.BytesServed, stats.PagesUploaded)
}
