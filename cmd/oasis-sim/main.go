// Command oasis-sim runs one trace-driven Oasis cluster-day simulation
// (§5) and prints the energy outcome and day series. With -scenario or
// -users it instead runs a fleet of independent cells through the
// deterministic parallel simulator and prints the merged result plus its
// bit-identity fingerprint.
//
// Examples:
//
//	oasis-sim -policy FulltoPartial -home 30 -cons 4 -vms 30 -kind weekday
//	oasis-sim -scenario list
//	oasis-sim -scenario flash-crowd,users=90000 -simworkers 8
//	oasis-sim -users 1000000 -simworkers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"oasis"
	"oasis/internal/flagbind"
)

func parsePolicy(s string) (oasis.Policy, error) {
	switch strings.ToLower(s) {
	case "onlypartial":
		return oasis.OnlyPartial, nil
	case "default":
		return oasis.Default, nil
	case "fulltopartial":
		return oasis.FulltoPartial, nil
	case "newhome":
		return oasis.NewHome, nil
	case "fullonly":
		return oasis.FullOnly, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func main() {
	var (
		policy = flag.String("policy", "FulltoPartial", "OnlyPartial|Default|FulltoPartial|NewHome|FullOnly")
		home   = flag.Int("home", 30, "home (compute) hosts")
		cons   = flag.Int("cons", 4, "consolidation hosts")
		vms    = flag.Int("vms", 30, "VMs per home host")
		kind   = flag.String("kind", "weekday", "weekday|weekend")
		seed   = flag.Uint64("seed", 1, "random seed")
		runs   = flag.Int("runs", 1, "days to simulate and average")
		series = flag.Bool("series", false, "print the hourly active/powered series")
		events = flag.Int("events", 0, "record and print the last N manager decisions")
		msMTBF = flag.Duration("ms-mtbf", 0, "inject memory-server outages with this mean time between failures per serving server (0 disables)")
		shards = flag.Int("shards", 0, "model a sharded memory-server fabric with this many backends (<=1 keeps the single host-local server)")

		scenarioSpec = flag.String("scenario", "", "run a fleet scenario: name[,key=value,...] ('list' prints the library); see README")
		users        = flag.Int("users", 0, "fleet mode: total simulated users, sharded into independent cells (0 keeps the single-cluster mode unless -scenario is given)")
		simWorkers   = flag.Int("simworkers", 0, "fleet mode: cells simulated concurrently (<=0 means GOMAXPROCS; results are bit-identical at any worker count)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /traces and /debug/pprof on this address while the simulation runs (empty disables); see OBSERVABILITY.md")
	)
	// The transport knobs come from the shared binding (-prefetch-streams
	// and -upload-streams drive the model; -pool/-backends/-replicas are
	// accepted for flag parity with the daemons but the simulator keys the
	// fabric off -shards, or off the -backends count when -shards is unset).
	var transport flagbind.Transport
	flagbind.BindTransport(flag.CommandLine, &transport)
	flag.Parse()

	if *metricsAddr != "" {
		ts, err := oasis.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Fatalf("oasis-sim: -metrics-addr: %v", err)
		}
		defer ts.Close()
		log.Printf("oasis-sim: telemetry on http://%s/metrics (scrape mid-run to watch the day unfold)", ts.Addr())
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}

	if *scenarioSpec == "list" {
		for _, name := range oasis.ScenarioNames() {
			s, _ := oasis.ScenarioByName(name)
			fmt.Printf("%-20s %s\n", s.Name, s.Description)
		}
		return
	}
	if *scenarioSpec != "" || *users > 0 {
		runFleet(*scenarioSpec, *users, *simWorkers, pol, *kind, *seed,
			*home, *cons, *vms, *series)
		return
	}

	cfg := oasis.DefaultSimConfig()
	cfg.Cluster.Policy = pol
	cfg.Cluster.HomeHosts = *home
	cfg.Cluster.ConsHosts = *cons
	cfg.Cluster.VMsPerHost = *vms
	cfg.Cluster.Seed = *seed
	cfg.TraceSeed = *seed
	cfg.Cluster.EventLogSize = *events
	cfg.Cluster.MemServerMTBF = *msMTBF
	cfg.Cluster.Model.PrefetchStreams = transport.PrefetchStreams
	cfg.Cluster.Model.UploadStreams = transport.UploadStreams
	cfg.Cluster.Model.Shards = *shards
	if *shards == 0 && transport.Sharded() {
		cfg.Cluster.Model.Shards = len(transport.Backends)
	}
	cfg.Kind = oasis.Weekday
	if strings.ToLower(*kind) == "weekend" {
		cfg.Kind = oasis.Weekend
	}

	if *runs > 1 {
		sum, err := oasis.SimulateN(cfg, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v on a %v, %d+%d hosts, %d VMs/host, %d runs:\n",
			pol, cfg.Kind, *home, *cons, *vms, *runs)
		fmt.Printf("  energy savings: %.1f%% ± %.1f%%\n", sum.Savings.Mean(), sum.Savings.Std())
		return
	}

	r, err := oasis.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v on a %v, %d+%d hosts, %d VMs/host:\n", pol, cfg.Kind, *home, *cons, *vms)
	fmt.Printf("  baseline: %.1f kWh   oasis: %.1f kWh   savings: %.1f%%\n",
		r.BaselineJoules/3.6e6, r.OasisJoules/3.6e6, r.SavingsPct)
	fmt.Printf("  peak active VMs: %d   zero-delay transitions: %.0f%%   exhaustions: %d\n",
		r.PeakActive, 100*r.Stats.ZeroDelayFraction(), r.Stats.Exhaustions)
	fmt.Printf("  network traffic: %v (full %v, descriptors %v, on-demand %v, reintegration %v)\n",
		r.Stats.NetworkBytes(), r.Stats.FullBytes, r.Stats.DescriptorBytes,
		r.Stats.OnDemandBytes, r.Stats.ReintegrateBytes)
	fmt.Printf("  operations: %v\n", r.Stats.Ops)
	if transport.UploadStreams > 1 && r.Stats.DetachSample.N() > 0 {
		fmt.Printf("  detach windows (×%d upload streams): mean %.2fs, max %.2fs over %d detaches\n",
			transport.UploadStreams, r.Stats.DetachSample.Mean(), r.Stats.DetachSample.Max(), r.Stats.DetachSample.N())
	}
	if cfg.Cluster.Model.Shards > 1 && r.Stats.ShardSample.N() > 0 {
		fmt.Printf("  shard windows (×%d backends): mean %.2fs, max %.2fs over %d detaches\n",
			cfg.Cluster.Model.Shards, r.Stats.ShardSample.Mean(), r.Stats.ShardSample.Max(), r.Stats.ShardSample.N())
	}
	if *msMTBF > 0 {
		// Print the fault-injection outcome straight from the live
		// registry — the same oasis_sim_* values a -metrics-addr scrape
		// shows, so the CLI summary cannot drift from the exposition.
		fmt.Println("  fault injection (oasis_sim_* from the live registry):")
		if err := oasis.WriteMetricsText(os.Stdout, "oasis_sim_"); err != nil {
			log.Fatal(err)
		}
	}
	if *series {
		fmt.Printf("%-6s %12s %14s\n", "hour", "active VMs", "powered hosts")
		for h := 0; h < 24; h++ {
			var act, pow int
			for i := h * 12; i < (h+1)*12; i++ {
				act += r.ActiveSeries[i]
				pow += r.PoweredSeries[i]
			}
			fmt.Printf("%-6d %12.0f %14.1f\n", h, float64(act)/12, float64(pow)/12)
		}
	}
	if *events > 0 {
		fmt.Printf("last %d manager decisions:\n", len(r.Events))
		for _, e := range r.Events {
			fmt.Println("  " + e.String())
		}
	}
}

// runFleet is the -scenario / -users path: a fleet of independent cells
// through the deterministic parallel simulator. Single-cluster flags
// (policy, home, cons, vms, seed, kind) override the scenario's cell
// template only when given explicitly on the command line, so a bare
// `-scenario flash-crowd` runs the library's defaults.
func runFleet(spec string, users, workers int, pol oasis.Policy, kind string, seed uint64, home, cons, vms int, series bool) {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var fc oasis.FleetConfig
	if spec != "" {
		s, err := oasis.ParseScenario(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario %s: %s\n", s.Name, s.Description)
		fc = s.Fleet
	} else {
		fc = oasis.FleetConfig{Cell: oasis.DefaultClusterConfig(), Kind: oasis.Weekday, Seed: seed}
	}
	if explicit["policy"] {
		fc.Cell.Policy = pol
	}
	if explicit["home"] {
		fc.Cell.HomeHosts = home
	}
	if explicit["cons"] {
		fc.Cell.ConsHosts = cons
	}
	if explicit["vms"] {
		fc.Cell.VMsPerHost = vms
	}
	if explicit["seed"] {
		fc.Seed = seed
	}
	if explicit["kind"] {
		fc.Kind = oasis.Weekday
		if strings.ToLower(kind) == "weekend" {
			fc.Kind = oasis.Weekend
		}
	}
	if users > 0 {
		fc.Users = users
	}
	if workers != 0 {
		fc.Workers = workers
	}

	res, err := oasis.SimulateFleet(fc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d users in %d cells of %d, %d workers, %v, seed %d:\n",
		res.Users, res.Cells, fc.UsersPerCell(), res.Workers, res.Kind, fc.Seed)
	fmt.Printf("  baseline: %.1f kWh   oasis: %.1f kWh   savings: %.1f%%\n",
		float64(res.BaselineMicroJ)/1e6/3.6e6, float64(res.OasisMicroJ)/1e6/3.6e6, res.SavingsPct)
	fmt.Printf("  peak active VMs: %d   availability: %.5f%%   outages: %d\n",
		res.PeakActive, 100*res.Availability, res.Digest.MemServerOutages)
	fmt.Printf("  fingerprint: %#x   elapsed: %v\n", res.Fingerprint(), res.Elapsed)
	// The final statistics come straight from the live registry — the
	// same oasis_sim_fleet_* values a -metrics-addr scrape shows mid-run,
	// so the CLI summary cannot drift from the exposition.
	fmt.Println("  fleet statistics (oasis_sim_fleet_* from the live registry):")
	if err := oasis.WriteMetricsText(os.Stdout, "oasis_sim_fleet_"); err != nil {
		log.Fatal(err)
	}
	if series {
		fmt.Printf("%-6s %12s %14s\n", "hour", "active VMs", "powered hosts")
		for h := 0; h < 24; h++ {
			var act, pow int64
			for i := h * 12; i < (h+1)*12; i++ {
				act += res.ActiveSeries[i]
				pow += res.PoweredSeries[i]
			}
			fmt.Printf("%-6d %12.0f %14.1f\n", h, float64(act)/12, float64(pow)/12)
		}
	}
}
