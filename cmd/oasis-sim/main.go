// Command oasis-sim runs one trace-driven Oasis cluster-day simulation
// (§5) and prints the energy outcome and day series.
//
// Example:
//
//	oasis-sim -policy FulltoPartial -home 30 -cons 4 -vms 30 -kind weekday
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"oasis"
	"oasis/internal/flagbind"
)

func parsePolicy(s string) (oasis.Policy, error) {
	switch strings.ToLower(s) {
	case "onlypartial":
		return oasis.OnlyPartial, nil
	case "default":
		return oasis.Default, nil
	case "fulltopartial":
		return oasis.FulltoPartial, nil
	case "newhome":
		return oasis.NewHome, nil
	case "fullonly":
		return oasis.FullOnly, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func main() {
	var (
		policy = flag.String("policy", "FulltoPartial", "OnlyPartial|Default|FulltoPartial|NewHome|FullOnly")
		home   = flag.Int("home", 30, "home (compute) hosts")
		cons   = flag.Int("cons", 4, "consolidation hosts")
		vms    = flag.Int("vms", 30, "VMs per home host")
		kind   = flag.String("kind", "weekday", "weekday|weekend")
		seed   = flag.Uint64("seed", 1, "random seed")
		runs   = flag.Int("runs", 1, "days to simulate and average")
		series = flag.Bool("series", false, "print the hourly active/powered series")
		events = flag.Int("events", 0, "record and print the last N manager decisions")
		msMTBF = flag.Duration("ms-mtbf", 0, "inject memory-server outages with this mean time between failures per serving server (0 disables)")
		shards = flag.Int("shards", 0, "model a sharded memory-server fabric with this many backends (<=1 keeps the single host-local server)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /traces and /debug/pprof on this address while the simulation runs (empty disables); see OBSERVABILITY.md")
	)
	// The transport knobs come from the shared binding (-prefetch-streams
	// and -upload-streams drive the model; -pool/-backends/-replicas are
	// accepted for flag parity with the daemons but the simulator keys the
	// fabric off -shards, or off the -backends count when -shards is unset).
	var transport flagbind.Transport
	flagbind.BindTransport(flag.CommandLine, &transport)
	flag.Parse()

	if *metricsAddr != "" {
		ts, err := oasis.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Fatalf("oasis-sim: -metrics-addr: %v", err)
		}
		defer ts.Close()
		log.Printf("oasis-sim: telemetry on http://%s/metrics (scrape mid-run to watch the day unfold)", ts.Addr())
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	cfg := oasis.DefaultSimConfig()
	cfg.Cluster.Policy = pol
	cfg.Cluster.HomeHosts = *home
	cfg.Cluster.ConsHosts = *cons
	cfg.Cluster.VMsPerHost = *vms
	cfg.Cluster.Seed = *seed
	cfg.TraceSeed = *seed
	cfg.Cluster.EventLogSize = *events
	cfg.Cluster.MemServerMTBF = *msMTBF
	cfg.Cluster.Model.PrefetchStreams = transport.PrefetchStreams
	cfg.Cluster.Model.UploadStreams = transport.UploadStreams
	cfg.Cluster.Model.Shards = *shards
	if *shards == 0 && transport.Sharded() {
		cfg.Cluster.Model.Shards = len(transport.Backends)
	}
	cfg.Kind = oasis.Weekday
	if strings.ToLower(*kind) == "weekend" {
		cfg.Kind = oasis.Weekend
	}

	if *runs > 1 {
		sum, err := oasis.SimulateN(cfg, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v on a %v, %d+%d hosts, %d VMs/host, %d runs:\n",
			pol, cfg.Kind, *home, *cons, *vms, *runs)
		fmt.Printf("  energy savings: %.1f%% ± %.1f%%\n", sum.Savings.Mean(), sum.Savings.Std())
		return
	}

	r, err := oasis.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v on a %v, %d+%d hosts, %d VMs/host:\n", pol, cfg.Kind, *home, *cons, *vms)
	fmt.Printf("  baseline: %.1f kWh   oasis: %.1f kWh   savings: %.1f%%\n",
		r.BaselineJoules/3.6e6, r.OasisJoules/3.6e6, r.SavingsPct)
	fmt.Printf("  peak active VMs: %d   zero-delay transitions: %.0f%%   exhaustions: %d\n",
		r.PeakActive, 100*r.Stats.ZeroDelayFraction(), r.Stats.Exhaustions)
	fmt.Printf("  network traffic: %v (full %v, descriptors %v, on-demand %v, reintegration %v)\n",
		r.Stats.NetworkBytes(), r.Stats.FullBytes, r.Stats.DescriptorBytes,
		r.Stats.OnDemandBytes, r.Stats.ReintegrateBytes)
	fmt.Printf("  operations: %v\n", r.Stats.Ops)
	if transport.UploadStreams > 1 && r.Stats.DetachSample.N() > 0 {
		fmt.Printf("  detach windows (×%d upload streams): mean %.2fs, max %.2fs over %d detaches\n",
			transport.UploadStreams, r.Stats.DetachSample.Mean(), r.Stats.DetachSample.Max(), r.Stats.DetachSample.N())
	}
	if cfg.Cluster.Model.Shards > 1 && r.Stats.ShardSample.N() > 0 {
		fmt.Printf("  shard windows (×%d backends): mean %.2fs, max %.2fs over %d detaches\n",
			cfg.Cluster.Model.Shards, r.Stats.ShardSample.Mean(), r.Stats.ShardSample.Max(), r.Stats.ShardSample.N())
	}
	if *msMTBF > 0 {
		// Print the fault-injection outcome straight from the live
		// registry — the same oasis_sim_* values a -metrics-addr scrape
		// shows, so the CLI summary cannot drift from the exposition.
		fmt.Println("  fault injection (oasis_sim_* from the live registry):")
		if err := oasis.WriteMetricsText(os.Stdout, "oasis_sim_"); err != nil {
			log.Fatal(err)
		}
	}
	if *series {
		fmt.Printf("%-6s %12s %14s\n", "hour", "active VMs", "powered hosts")
		for h := 0; h < 24; h++ {
			var act, pow int
			for i := h * 12; i < (h+1)*12; i++ {
				act += r.ActiveSeries[i]
				pow += r.PoweredSeries[i]
			}
			fmt.Printf("%-6d %12.0f %14.1f\n", h, float64(act)/12, float64(pow)/12)
		}
	}
	if *events > 0 {
		fmt.Printf("last %d manager decisions:\n", len(r.Events))
		for _, e := range r.Events {
			fmt.Println("  " + e.String())
		}
	}
}
