package main

import "testing"

func TestParsePolicy(t *testing.T) {
	cases := map[string]bool{
		"FulltoPartial": true,
		"fulltopartial": true,
		"OnlyPartial":   true,
		"DEFAULT":       true,
		"NewHome":       true,
		"FullOnly":      true,
		"bogus":         false,
		"":              false,
	}
	for in, ok := range cases {
		_, err := parsePolicy(in)
		if ok && err != nil {
			t.Errorf("parsePolicy(%q) = %v", in, err)
		}
		if !ok && err == nil {
			t.Errorf("parsePolicy(%q) accepted", in)
		}
	}
}
