// Command oasis-agentd runs an Oasis host agent (§4.2): the per-host
// daemon that owns VMs, executes partial/full migrations and
// reintegration against peer agents, and exposes the host's memory
// server. A cluster manager (or another agent) drives it over the wire
// RPC interface.
//
// Example (three hosts on one machine):
//
//	oasis-agentd -name home-0 -rpc 127.0.0.1:8100 -mem 127.0.0.1:8200 -secret s3cret &
//	oasis-agentd -name home-1 -rpc 127.0.0.1:8101 -mem 127.0.0.1:8201 -secret s3cret &
//	oasis-agentd -name cons-0 -rpc 127.0.0.1:8102 -mem 127.0.0.1:8202 -secret s3cret &
//
// When -backends selects a shard fabric, the agent's RPC surface also
// carries the live fabric admin operations (Agent.FabricAddBackend,
// Agent.FabricRemoveBackend, Agent.FabricStatus): memory-server
// backends join and drain without restarting the agent or its VMs.
// memtapctl -agent is the command-line client for them.
package main

import (
	"flag"
	"log"

	"oasis/internal/agent"
	"oasis/internal/flagbind"
	"oasis/internal/telemetry"
)

func main() {
	var (
		name        = flag.String("name", "host-0", "host name")
		rpc         = flag.String("rpc", "127.0.0.1:8100", "agent RPC listen address")
		mem         = flag.String("mem", "127.0.0.1:8200", "memory server listen address")
		secret      = flag.String("secret", "", "shared memory-server secret (required)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /traces and /debug/pprof on this address (empty disables); see OBSERVABILITY.md")
	)
	// The page-transport knobs (-pool, -prefetch-streams, -upload-streams,
	// -backends, -replicas) come from the shared binding: one definition
	// for every daemon (see internal/flagbind).
	transport := agent.TransportConfig{PoolSize: 1, PrefetchStreams: 1, UploadStreams: 1}
	flagbind.BindTransport(flag.CommandLine, &transport)
	flag.Parse()
	if *secret == "" {
		log.Fatal("oasis-agentd: -secret is required")
	}
	if *metricsAddr != "" {
		ts, err := telemetry.Serve(*metricsAddr, nil, nil)
		if err != nil {
			log.Fatalf("oasis-agentd: -metrics-addr: %v", err)
		}
		log.Printf("oasis-agentd: telemetry on http://%s/metrics", ts.Addr())
	}
	a := agent.New(*name, []byte(*secret), log.Printf)
	a.SetTransport(transport)
	if err := a.Start(*rpc, *mem); err != nil {
		log.Fatal(err)
	}
	log.Printf("oasis-agentd: %s serving RPC on %s, memory server on %s",
		*name, a.Addr(), a.MemServerAddr())
	select {}
}
