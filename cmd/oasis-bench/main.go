// Command oasis-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	oasis-bench                      # run every experiment
//	oasis-bench -experiment fig8     # one experiment
//	oasis-bench -runs 5              # average 5 simulation days per point
//	oasis-bench -quick               # restricted sweeps for a fast pass
//	oasis-bench -list                # list experiment identifiers
//	oasis-bench -json BENCH_reattach.json   # transport benchmark as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oasis/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		seed       = flag.Uint64("seed", 42, "random seed")
		runs       = flag.Int("runs", 1, "simulation days averaged per cluster data point")
		quick      = flag.Bool("quick", false, "restrict sweeps for a fast pass")
		list       = flag.Bool("list", false, "list experiment identifiers and exit")
		outDir     = flag.String("out", "", "also write each report to <dir>/<id>.txt")
		jsonOut    = flag.String("json", "", "run the reattach transport benchmark and write it as JSON to this path")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	opt := experiments.Option{Seed: *seed, Runs: *runs, Quick: *quick}

	if *jsonOut != "" {
		// -experiment selects which benchmark the JSON carries: "detach"
		// for the upload pipeline, "shard" for the sharded fabric, "sim"
		// for the million-user fleet simulator, "cluster" for the
		// control-plane stress benchmark, anything else (including the
		// default "all") keeps the original reattach benchmark.
		var (
			bench   any
			speedup float64
			err     error
		)
		switch strings.ToLower(*experiment) {
		case "sim":
			var b experiments.FleetBench
			b, err = experiments.Fleet(opt)
			if err == nil && len(b.WorkerRuns) > 1 {
				bench, speedup = b, b.WorkerRuns[0].ElapsedSec/b.WorkerRuns[len(b.WorkerRuns)-1].ElapsedSec
			} else {
				bench = b
			}
		case "cluster":
			var b experiments.ClusterBench
			b, err = experiments.ClusterStress(opt)
			bench, speedup = b, b.MeasuredGate.Ratio
		case "detach":
			var b experiments.DetachBench
			b, err = experiments.Detach(opt)
			bench, speedup = b, b.Model.Speedup
		case "shard":
			var b experiments.ShardBench
			b, err = experiments.Shard(opt)
			bench, speedup = b, b.Model.Speedup
		case "rebalance":
			var b experiments.RebalanceBench
			b, err = experiments.Rebalance(opt)
			bench, speedup = b, b.Model.Speedup
		default:
			var b experiments.ReattachBench
			b, err = experiments.Reattach(opt)
			bench, speedup = b, b.Model.Speedup
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (modeled speedup %.2fx)\n", *jsonOut, speedup)
		// Benchmarks that embed a measured acceptance gate decide the exit
		// status: CI runs the bench and fails the build when the measured
		// comparison regresses past the noise floor.
		if g, ok := bench.(interface{ GateResult() experiments.Gate }); ok {
			gate := g.GateResult()
			fmt.Printf("measured gate (%s): ratio %.3f vs floor %.2f\n",
				gate.Comparison, gate.Ratio, gate.NoiseFloor)
			if !gate.Pass {
				fmt.Fprintln(os.Stderr, "measured gate FAILED")
				os.Exit(1)
			}
		}
		return
	}

	emit := func(r experiments.Report) {
		fmt.Println(r.String())
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, r.ID+".txt")
		if err := os.WriteFile(path, []byte(r.String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *experiment == "all" {
		for _, r := range experiments.All(opt) {
			emit(r)
		}
		for _, r := range experiments.Ablations(opt) {
			emit(r)
		}
		return
	}
	r, ok := experiments.ByID(*experiment, opt)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
			*experiment, strings.Join(experiments.IDs(), ", "))
		os.Exit(2)
	}
	emit(r)
}
